//! Crash-consistent checkpoint journal for the offline phase.
//!
//! The offline phase is the expensive part of FALCC; at production scale
//! it runs for hours, and a crash should cost *the current stage*, not the
//! whole run. [`CheckpointJournal`] journals phase-granular checkpoints —
//! pool training (with per-member sub-checkpoints) → proxy → projection →
//! k-estimation → clustering → gap-fill → assessment (with per-region
//! sub-checkpoints) — into a checkpoint directory, and
//! `FalccModel::fit` with [`crate::FalccConfig::checkpoint`] set resumes
//! after the last valid checkpoint, producing a model **bit-identical** to
//! an uninterrupted run at any thread count.
//!
//! ## On-disk format
//!
//! * One **record file** per checkpoint, `ck_<seq>_<stage>.json`: the
//!   stage payload wrapped in the same v2 checksummed envelope as model
//!   snapshots (magic `falcc-checkpoint`), written atomically and durably
//!   (tmp + fsync + rename + parent-directory fsync).
//! * An append-only **manifest**, `manifest.jsonl`: one JSON entry per
//!   committed record carrying the record file's checksum, the checksum of
//!   the *previous* manifest line (a hash chain), the run-config
//!   fingerprint, and its own line checksum.
//!
//! A record is **committed** only once its manifest entry is durable; the
//! commit order is the pipeline order, identical at every thread count.
//! On resume the manifest is scanned front to back and the journal falls
//! back to the longest prefix whose chain, checksums, sequence numbers,
//! fingerprint, and record files all verify — torn manifest lines,
//! bit-flipped records, truncation, and mixed-generation suffixes are all
//! detected and discarded (counted on `checkpoint.discarded`). A journal
//! whose *entire* manifest belongs to a different run-config fingerprint
//! is rejected with the typed [`FalccError::CheckpointStale`].
//!
//! ## Fault injection
//!
//! The journal honours two [`crate::faults`] extensions: `TransientIo`
//! (an I/O attempt fails once; absorbed by the bounded retry layer with a
//! counted *virtual* backoff — deterministic, no wall clock) and
//! [`CrashPoint`] (the process hard-aborts at an exact commit phase; the
//! chaos harness sweeps every site and asserts resume produces
//! byte-identical snapshots).

use crate::config::FalccConfig;
use crate::error::FalccError;
use crate::faults::{CrashPhase, CrashPoint, FaultPlan, FaultSite};
use crate::io::{
    atomic_durable_write, fnv1a64, open_envelope, seal_envelope, EnvelopeFault,
};
use falcc_dataset::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Envelope magic for checkpoint record files — distinct from model
/// snapshots so a record can never be mistaken for a model.
const MAGIC: &str = "falcc-checkpoint";

/// Checkpoint format version; shares the v2 envelope of model snapshots.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Manifest file name inside the checkpoint directory.
pub const MANIFEST: &str = "manifest.jsonl";

/// Hash-chain seed for the first manifest entry.
const CHAIN_SEED: &str = "0000000000000000";

/// Where and how the offline phase journals its checkpoints. Carried on
/// [`FalccConfig::checkpoint`]; `None` (the default) disables journaling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding the record files and manifest (created if
    /// missing).
    pub dir: PathBuf,
    /// Resume from an existing journal instead of starting fresh. A fresh
    /// (non-resume) open wipes any prior journal in `dir`.
    pub resume: bool,
    /// Retries the bounded retry layer grants each journal I/O operation
    /// before surfacing [`FalccError::RetriesExhausted`].
    pub retry_budget: u32,
}

impl CheckpointSpec {
    /// A fresh-run spec with the default retry budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), resume: false, retry_budget: 3 }
    }

    /// The same spec with resume enabled.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// A checkpointed pipeline stage. Indexed variants are the sub-checkpoint
/// sites (per pool member, per region); the index is an input-order index,
/// so stage keys — and therefore commit order — are thread-count
/// independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// One fitted pool candidate (grid slot or split-training slot).
    PoolMember(usize),
    /// The selected, diverse pool (specs + applicability).
    PoolTraining,
    /// Proxy-mitigation outcome (§3.4).
    Proxy,
    /// Digest of the projected validation matrix — a cheap verification
    /// checkpoint (projection is recomputed, then checked).
    Projection,
    /// The estimated cluster count.
    KEstimation,
    /// The fitted k-means model.
    Clustering,
    /// Gap-filled per-region assessment sets.
    GapFill,
    /// One region's assessment outcome.
    Region(usize),
    /// The assembled assessment vector.
    Assessment,
}

impl Stage {
    /// The stable string key naming this stage in record files and
    /// manifest entries.
    pub fn key(self) -> String {
        match self {
            Self::PoolMember(i) => format!("pool_member.{i}"),
            Self::PoolTraining => "pool_training".to_string(),
            Self::Proxy => "proxy".to_string(),
            Self::Projection => "projection".to_string(),
            Self::KEstimation => "k_estimation".to_string(),
            Self::Clustering => "clustering".to_string(),
            Self::GapFill => "gap_fill".to_string(),
            Self::Region(c) => format!("region.{c}"),
            Self::Assessment => "assessment".to_string(),
        }
    }
}

/// Digest of the projected validation matrix, journaled by the
/// [`Stage::Projection`] verification checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectionDigest {
    /// Projected rows.
    pub rows: u64,
    /// Projected dimensions.
    pub dims: u64,
    /// FNV-1a 64 over the matrix values' bit patterns, hex.
    pub hash: String,
}

impl ProjectionDigest {
    /// Digests a projected matrix (row-major values).
    pub fn of(rows: usize, dims: usize, values: &[f64]) -> Self {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Self {
            rows: rows as u64,
            dims: dims as u64,
            hash: format!("{:016x}", fnv1a64(&bytes)),
        }
    }
}

/// One manifest line. `check` hashes the entry serialised with `check`
/// empty; `prev` hashes the previous full line (the chain).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    seq: u64,
    stage: String,
    file: String,
    record: String,
    prev: String,
    fingerprint: String,
    check: String,
}

impl ManifestEntry {
    fn checksum(&self) -> Result<u64, FalccError> {
        let mut unsealed = self.clone();
        unsealed.check = String::new();
        let json = serde_json::to_string(&unsealed).map_err(|e| {
            FalccError::CheckpointCorrupt { detail: format!("manifest entry unserialisable: {e}") }
        })?;
        Ok(fnv1a64(json.as_bytes()))
    }
}

/// The run-config fingerprint: a hash over every input that determines
/// the fitted model — config knobs (loss, proxy, clustering, gap-fill,
/// pool, seed, …) and digests of the train/validation datasets. Thread
/// count, fault schedules, and the checkpoint spec itself are excluded:
/// they never change the result, so resuming at a different thread count
/// is legal (and must stay bit-identical).
pub fn fingerprint(config: &FalccConfig, train: &Dataset, validation: &Dataset) -> u64 {
    let pool = &config.pool;
    let canonical = format!(
        "loss={:?};proxy={:?};clustering={:?};gap_fill_k={};pool=({:?},{},{},{},{});\
         individual_k={:?};seed={};min_pool_size={};train={};validation={}",
        config.loss,
        config.proxy,
        config.clustering,
        config.gap_fill_k,
        pool.trainer,
        pool.pool_size,
        pool.split_by_group,
        pool.accuracy_margin,
        pool.seed,
        config.individual_assessment_k,
        config.seed,
        config.min_pool_size,
        dataset_digest(train),
        dataset_digest(validation),
    );
    fnv1a64(canonical.as_bytes())
}

/// FNV-1a 64 over a dataset's dimensions, feature bit patterns, labels,
/// and group assignments, hex-encoded.
fn dataset_digest(ds: &Dataset) -> String {
    let mut bytes = Vec::with_capacity(ds.len() * (ds.n_attrs() + 1) * 8);
    bytes.extend_from_slice(&(ds.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(ds.n_attrs() as u64).to_le_bytes());
    for v in ds.flat() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    bytes.extend_from_slice(ds.labels());
    for g in ds.groups() {
        bytes.extend_from_slice(&g.0.to_le_bytes());
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// What a resume scan recovered — exposed for tests and operator logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeReport {
    /// Manifest entries accepted (the valid prefix).
    pub resumed: usize,
    /// Manifest lines discarded (torn, corrupt, chain break, stale
    /// suffix).
    pub discarded: usize,
}

/// A live checkpoint journal. See the module docs for the format and the
/// crash-consistency argument.
pub struct CheckpointJournal {
    dir: PathBuf,
    fingerprint: String,
    retry_budget: u32,
    faults: FaultPlan,
    /// Sequence number of the next commit (== accepted entries so far).
    next_seq: u64,
    /// Hash of the last accepted manifest line (chain tail).
    chain_tail: String,
    /// Stage key → record payload, for every accepted or committed record.
    loaded: BTreeMap<String, String>,
    /// Global I/O-attempt counter — the `TransientIo` fault ordinal.
    io_attempts: u64,
    /// Accumulated *virtual* backoff units spent on retries (1, 2, 4, …
    /// per successive retry of one operation). Deterministic: no clock.
    virtual_backoff: u64,
    /// What the resume scan recovered.
    report: ResumeReport,
}

impl CheckpointJournal {
    /// Opens (or creates) the journal described by `spec`.
    ///
    /// A fresh open wipes any prior journal in the directory. A resume
    /// open scans the manifest, keeps the longest valid prefix, rewrites
    /// the manifest down to that prefix, and deletes unreferenced record
    /// files.
    ///
    /// # Errors
    /// I/O failures; [`FalccError::CheckpointStale`] when the journal's
    /// entries all carry a different run-config fingerprint.
    pub fn open(
        spec: &CheckpointSpec,
        fingerprint: u64,
        faults: &FaultPlan,
    ) -> Result<Self, FalccError> {
        let io = |e: std::io::Error| FalccError::Dataset(falcc_dataset::DatasetError::Io(e));
        std::fs::create_dir_all(&spec.dir).map_err(io)?;
        let mut journal = Self {
            dir: spec.dir.clone(),
            fingerprint: format!("{fingerprint:016x}"),
            retry_budget: spec.retry_budget,
            faults: faults.clone(),
            next_seq: 0,
            chain_tail: CHAIN_SEED.to_string(),
            loaded: BTreeMap::new(),
            io_attempts: 0,
            virtual_backoff: 0,
            report: ResumeReport::default(),
        };
        if spec.resume {
            journal.scan_manifest()?;
        } else {
            journal.wipe()?;
        }
        Ok(journal)
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest path.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    /// Records committed so far (resumed + written this run).
    pub fn records(&self) -> u64 {
        self.next_seq
    }

    /// What the resume scan recovered (zeros for a fresh open).
    pub fn resume_report(&self) -> ResumeReport {
        self.report
    }

    /// Accumulated virtual backoff units spent on retries.
    pub fn virtual_backoff(&self) -> u64 {
        self.virtual_backoff
    }

    /// Deletes every journal artifact in the directory (fresh-run open).
    fn wipe(&self) -> Result<(), FalccError> {
        let io = |e: std::io::Error| FalccError::Dataset(falcc_dataset::DatasetError::Io(e));
        let manifest = self.manifest_path();
        if manifest.exists() {
            std::fs::remove_file(&manifest).map_err(io)?;
        }
        self.remove_records(|_| true)
    }

    /// Deletes `ck_*.json` files whose name satisfies `doomed`.
    fn remove_records(&self, doomed: impl Fn(&str) -> bool) -> Result<(), FalccError> {
        let io = |e: std::io::Error| FalccError::Dataset(falcc_dataset::DatasetError::Io(e));
        for entry in std::fs::read_dir(&self.dir).map_err(io)? {
            let entry = entry.map_err(io)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("ck_") && name.ends_with(".json") && doomed(name) {
                std::fs::remove_file(entry.path()).map_err(io)?;
            }
        }
        Ok(())
    }

    /// Resume scan: accepts the longest valid manifest prefix, discards
    /// the rest, and compacts the on-disk state down to that prefix.
    fn scan_manifest(&mut self) -> Result<(), FalccError> {
        let manifest = self.manifest_path();
        if !manifest.exists() {
            // Nothing to resume — behave like a fresh open, but clear any
            // orphaned record files from a run that died before its first
            // manifest append.
            return self.remove_records(|_| true);
        }
        let io = |e: std::io::Error| FalccError::Dataset(falcc_dataset::DatasetError::Io(e));
        let raw = std::fs::read(&manifest).map_err(io)?;
        let text = String::from_utf8_lossy(&raw);
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut accepted: Vec<String> = Vec::new();
        let mut saw_foreign_generation = false;
        for line in &lines {
            match self.accept_line(line) {
                Ok(()) => accepted.push((*line).to_string()),
                Err(LineFault::ForeignGeneration) => {
                    saw_foreign_generation = true;
                    break;
                }
                Err(LineFault::Invalid(_)) => break,
            }
        }
        if accepted.is_empty() && saw_foreign_generation {
            // The whole journal belongs to a different run: splicing would
            // mix generations, so reject loudly instead of silently
            // recomputing over foreign state.
            return Err(FalccError::CheckpointStale {
                found: first_fingerprint(&lines).unwrap_or_else(|| "unreadable".to_string()),
                expected: self.fingerprint.clone(),
            });
        }
        let discarded = lines.len() - accepted.len();
        self.report = ResumeReport { resumed: accepted.len(), discarded };
        falcc_telemetry::counters::CHECKPOINTS_RESUMED.add(accepted.len() as u64);
        falcc_telemetry::counters::CHECKPOINTS_DISCARDED.add(discarded as u64);
        if falcc_telemetry::enabled() {
            falcc_telemetry::event(
                "checkpoint.resume",
                format!(
                    "accepted {} checkpoint(s), discarded {discarded} from {}",
                    accepted.len(),
                    self.dir.display(),
                ),
            );
        }
        if discarded > 0 {
            // Compact: the manifest must end exactly at the valid prefix
            // so subsequent appends extend a verified chain.
            let mut compact = accepted.join("\n");
            if !compact.is_empty() {
                compact.push('\n');
            }
            atomic_durable_write(&manifest, compact.as_bytes())?;
        }
        // Drop record files the accepted prefix does not reference —
        // orphans from after-record crashes and stale generations.
        let referenced: std::collections::BTreeSet<String> = accepted
            .iter()
            .filter_map(|l| serde_json::from_str::<ManifestEntry>(l).ok())
            .map(|e| e.file)
            .collect();
        self.remove_records(|name| !referenced.contains(name))
    }

    /// Validates one manifest line against the running chain state and
    /// loads its record payload on success.
    fn accept_line(&mut self, line: &str) -> Result<(), LineFault> {
        let entry: ManifestEntry = serde_json::from_str(line)
            .map_err(|e| LineFault::Invalid(format!("unreadable manifest line: {e}")))?;
        let declared = u64::from_str_radix(&entry.check, 16)
            .map_err(|_| LineFault::Invalid("unparseable line checksum".into()))?;
        let actual = entry
            .checksum()
            .map_err(|e| LineFault::Invalid(e.to_string()))?;
        if declared != actual {
            return Err(LineFault::Invalid("manifest line checksum mismatch".into()));
        }
        if entry.prev != self.chain_tail {
            return Err(LineFault::Invalid("manifest chain break".into()));
        }
        if entry.seq != self.next_seq {
            return Err(LineFault::Invalid(format!(
                "manifest sequence skew: entry {} at position {}",
                entry.seq, self.next_seq
            )));
        }
        if entry.fingerprint != self.fingerprint {
            return Err(LineFault::ForeignGeneration);
        }
        let path = self.dir.join(&entry.file);
        let bytes = std::fs::read(&path)
            .map_err(|e| LineFault::Invalid(format!("record {} unreadable: {e}", entry.file)))?;
        if format!("{:016x}", fnv1a64(&bytes)) != entry.record {
            return Err(LineFault::Invalid(format!("record {} checksum mismatch", entry.file)));
        }
        let json = String::from_utf8(bytes)
            .map_err(|_| LineFault::Invalid(format!("record {} is not UTF-8", entry.file)))?;
        let payload = match open_envelope(MAGIC, CHECKPOINT_VERSION, &json) {
            Ok(payload) => payload,
            Err(EnvelopeFault::Corrupt(detail)) => {
                return Err(LineFault::Invalid(format!("record {}: {detail}", entry.file)))
            }
            Err(EnvelopeFault::VersionSkew(found)) => {
                return Err(LineFault::Invalid(format!(
                    "record {} written by checkpoint format v{found}",
                    entry.file
                )))
            }
        };
        self.loaded.insert(entry.stage.clone(), payload);
        self.chain_tail = format!("{:016x}", fnv1a64(line.as_bytes()));
        self.next_seq += 1;
        Ok(())
    }

    /// Returns the resumed value for `stage`, if the journal holds one.
    /// Payloads that fail to parse as `T` are treated as missing — the
    /// stage is simply recomputed.
    pub fn fetch<T: Deserialize>(&self, stage: Stage) -> Option<T> {
        let payload = self.loaded.get(&stage.key())?;
        serde_json::from_str(payload).ok()
    }

    /// Whether the journal already holds a record for `stage`.
    pub fn contains(&self, stage: Stage) -> bool {
        self.loaded.contains_key(&stage.key())
    }

    /// Commits a checkpoint: seals the payload in an envelope, publishes
    /// the record file atomically and durably, then appends the chained
    /// manifest entry. A no-op when the stage was already resumed.
    ///
    /// # Errors
    /// Serialisation failures, I/O failures (after the bounded retry
    /// layer), and [`FalccError::RetriesExhausted`].
    pub fn commit<T: Serialize>(&mut self, stage: Stage, value: &T) -> Result<(), FalccError> {
        let key = stage.key();
        if self.loaded.contains_key(&key) {
            return Ok(());
        }
        let seq = self.next_seq;
        self.maybe_crash(seq, CrashPhase::BeforeWrite);
        let payload = serde_json::to_string(value).map_err(|e| {
            FalccError::InvalidConfig { detail: format!("checkpoint serialisation failed: {e}") }
        })?;
        let sealed =
            seal_envelope(MAGIC, CHECKPOINT_VERSION, payload.clone()).map_err(|e| {
                FalccError::InvalidConfig { detail: format!("checkpoint envelope failed: {e}") }
            })?;
        let file = format!("ck_{seq:04}_{key}.json");
        let record_path = self.dir.join(&file);
        self.with_retries("checkpoint record write", |_| {
            atomic_durable_write(&record_path, sealed.as_bytes())
        })?;
        self.maybe_crash(seq, CrashPhase::AfterRecord);

        let mut entry = ManifestEntry {
            seq,
            stage: key.clone(),
            file,
            record: format!("{:016x}", fnv1a64(sealed.as_bytes())),
            prev: self.chain_tail.clone(),
            fingerprint: self.fingerprint.clone(),
            check: String::new(),
        };
        entry.check = format!("{:016x}", entry.checksum()?);
        let line = serde_json::to_string(&entry).map_err(|e| {
            FalccError::InvalidConfig { detail: format!("manifest serialisation failed: {e}") }
        })?;
        self.append_manifest(&line, seq)?;
        self.chain_tail = format!("{:016x}", fnv1a64(line.as_bytes()));
        self.next_seq += 1;
        self.loaded.insert(key, payload);
        falcc_telemetry::counters::CHECKPOINTS_WRITTEN.incr();
        self.maybe_crash(seq, CrashPhase::AfterCommit);
        Ok(())
    }

    /// Appends one manifest line durably, honouring the `MidManifest`
    /// crash point by tearing the line halfway before aborting.
    fn append_manifest(&mut self, line: &str, seq: u64) -> Result<(), FalccError> {
        let manifest = self.manifest_path();
        let torn = self
            .faults
            .crash_point()
            .is_some_and(|p| p == CrashPoint { ordinal: seq, phase: CrashPhase::MidManifest });
        let dir = self.dir.clone();
        self.with_retries("manifest append", |_| {
            let io =
                |e: std::io::Error| FalccError::Dataset(falcc_dataset::DatasetError::Io(e));
            let created = !manifest.exists();
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&manifest)
                .map_err(io)?;
            if torn {
                // Simulated torn append: half the line reaches the disk,
                // then the process dies mid-write.
                let half = &line.as_bytes()[..line.len() / 2];
                f.write_all(half).map_err(io)?;
                f.sync_all().map_err(io)?;
                std::process::abort();
            }
            f.write_all(line.as_bytes()).map_err(io)?;
            f.write_all(b"\n").map_err(io)?;
            f.sync_all().map_err(io)?;
            if created {
                std::fs::File::open(&dir).and_then(|d| d.sync_all()).map_err(io)?;
            }
            Ok(())
        })
    }

    /// The bounded retry layer: runs `op`, absorbing transient failures
    /// (injected via `TransientIo` or real) up to the retry budget with a
    /// counted virtual backoff — deterministic by construction, since the
    /// backoff is an accumulator, not a sleep.
    fn with_retries(
        &mut self,
        what: &str,
        mut op: impl FnMut(&mut Self) -> Result<(), FalccError>,
    ) -> Result<(), FalccError> {
        let mut attempts = 0u32;
        let mut backoff = 1u64;
        loop {
            let ordinal = self.io_attempts;
            self.io_attempts += 1;
            let result = if self.faults.fires(FaultSite::TransientIo, ordinal) {
                Err(FalccError::Dataset(falcc_dataset::DatasetError::Io(
                    std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected transient I/O failure",
                    ),
                )))
            } else {
                op(self)
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempts >= self.retry_budget {
                        return Err(FalccError::RetriesExhausted {
                            op: what.to_string(),
                            attempts,
                        });
                    }
                    attempts += 1;
                    self.virtual_backoff += backoff;
                    backoff = backoff.saturating_mul(2);
                    falcc_telemetry::counters::OFFLINE_RETRIES.incr();
                    if falcc_telemetry::enabled() {
                        falcc_telemetry::event(
                            "offline.retry",
                            format!(
                                "{what}: retry {attempts} after {e} \
                                 (virtual backoff {})",
                                self.virtual_backoff
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Hard-aborts the process when the armed crash point matches —
    /// simulating `kill -9` at an exact journal state.
    fn maybe_crash(&self, ordinal: u64, phase: CrashPhase) {
        if self.faults.crash_point() == Some(CrashPoint { ordinal, phase }) {
            std::process::abort();
        }
    }
}

/// Why a manifest line was not accepted during the resume scan.
enum LineFault {
    /// Damaged or inconsistent — the valid prefix ends here.
    Invalid(#[allow(dead_code)] String),
    /// Intact but written by a different run-config fingerprint.
    ForeignGeneration,
}

/// The fingerprint of the first parseable manifest line, for the
/// stale-generation error message.
fn first_fingerprint(lines: &[&str]) -> Option<String> {
    lines
        .iter()
        .find_map(|l| serde_json::from_str::<ManifestEntry>(l).ok())
        .map(|e| e.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("falcc_ckpt_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec(dir: &Path) -> CheckpointSpec {
        CheckpointSpec::new(dir)
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Payload {
        items: Vec<u64>,
        note: String,
    }

    fn sample(n: u64) -> Payload {
        Payload { items: (0..n).collect(), note: format!("payload-{n}") }
    }

    #[test]
    fn commit_then_resume_round_trips_every_stage() {
        let dir = tmp_dir("roundtrip");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(3)).unwrap();
        j.commit(Stage::KEstimation, &sample(1)).unwrap();
        j.commit(Stage::Region(2), &sample(5)).unwrap();
        assert_eq!(j.records(), 3);

        let r = CheckpointJournal::open(&spec(&dir).resuming(), 7, &plan).unwrap();
        assert_eq!(r.resume_report(), ResumeReport { resumed: 3, discarded: 0 });
        assert_eq!(r.fetch::<Payload>(Stage::Proxy), Some(sample(3)));
        assert_eq!(r.fetch::<Payload>(Stage::KEstimation), Some(sample(1)));
        assert_eq!(r.fetch::<Payload>(Stage::Region(2)), Some(sample(5)));
        assert!(r.fetch::<Payload>(Stage::Clustering).is_none());
        assert!(r.contains(Stage::Proxy));
        assert!(!r.contains(Stage::GapFill));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_open_wipes_previous_journal() {
        let dir = tmp_dir("wipe");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(2)).unwrap();
        let j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        assert_eq!(j.records(), 0);
        assert!(!j.contains(Stage::Proxy));
        assert!(!j.manifest_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_is_idempotent_for_resumed_stages() {
        let dir = tmp_dir("idem");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(2)).unwrap();
        let mut r = CheckpointJournal::open(&spec(&dir).resuming(), 7, &plan).unwrap();
        r.commit(Stage::Proxy, &sample(99)).unwrap(); // ignored: already held
        assert_eq!(r.records(), 1);
        assert_eq!(r.fetch::<Payload>(Stage::Proxy), Some(sample(2)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_line_falls_back_to_valid_prefix() {
        let dir = tmp_dir("torn");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(2)).unwrap();
        j.commit(Stage::KEstimation, &sample(3)).unwrap();
        // Tear the last line in half — the classic mid-append crash.
        let manifest = j.manifest_path();
        let text = std::fs::read_to_string(&manifest).unwrap();
        let keep = text.len() - text.lines().last().unwrap().len() / 2 - 1;
        std::fs::write(&manifest, &text.as_bytes()[..keep]).unwrap();

        let r = CheckpointJournal::open(&spec(&dir).resuming(), 7, &plan).unwrap();
        assert_eq!(r.resume_report(), ResumeReport { resumed: 1, discarded: 1 });
        assert!(r.contains(Stage::Proxy));
        assert!(!r.contains(Stage::KEstimation));
        // The manifest was compacted to the valid prefix: appending works.
        let mut r = r;
        r.commit(Stage::Clustering, &sample(4)).unwrap();
        let r2 = CheckpointJournal::open(&spec(&dir).resuming(), 7, &plan).unwrap();
        assert_eq!(r2.resume_report(), ResumeReport { resumed: 2, discarded: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_break_discards_the_suffix() {
        let dir = tmp_dir("chain");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        for (i, stage) in
            [Stage::Proxy, Stage::KEstimation, Stage::Clustering].into_iter().enumerate()
        {
            j.commit(stage, &sample(i as u64)).unwrap();
        }
        // Remove the middle line: entry 2's `prev` no longer matches.
        let manifest = j.manifest_path();
        let text = std::fs::read_to_string(&manifest).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(&manifest, format!("{}\n{}\n", lines[0], lines[2])).unwrap();

        let r = CheckpointJournal::open(&spec(&dir).resuming(), 7, &plan).unwrap();
        assert_eq!(r.resume_report(), ResumeReport { resumed: 1, discarded: 1 });
        assert!(r.contains(Stage::Proxy));
        assert!(!r.contains(Stage::Clustering));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_file_ends_the_prefix() {
        let dir = tmp_dir("record");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(2)).unwrap();
        j.commit(Stage::KEstimation, &sample(3)).unwrap();
        // Flip one byte of the second record file.
        let file = dir.join("ck_0001_k_estimation.json");
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        assert!(crate::faults::flip_byte(&mut bytes, mid));
        std::fs::write(&file, &bytes).unwrap();

        let r = CheckpointJournal::open(&spec(&dir).resuming(), 7, &plan).unwrap();
        assert_eq!(r.resume_report(), ResumeReport { resumed: 1, discarded: 1 });
        assert!(r.contains(Stage::Proxy));
        assert!(!r.contains(Stage::KEstimation));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_generation_is_rejected_whole_and_spliced_suffixes_discarded() {
        let dir = tmp_dir("stale");
        let plan = FaultPlan::default();
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(2)).unwrap();
        // Resuming with a different fingerprint: typed rejection.
        match CheckpointJournal::open(&spec(&dir).resuming(), 8, &plan) {
            Err(FalccError::CheckpointStale { found, expected }) => {
                assert_eq!(found, format!("{:016x}", 7u64));
                assert_eq!(expected, format!("{:016x}", 8u64));
            }
            other => panic!("expected CheckpointStale, got {:?}", other.map(|j| j.records())),
        }
        // A same-generation prefix with a stale suffix falls back to the
        // prefix instead.
        let mut j8 = CheckpointJournal::open(&spec(&dir), 8, &plan).unwrap();
        j8.commit(Stage::Proxy, &sample(1)).unwrap();
        // Splice a foreign-generation line on top (chain-valid but wrong
        // fingerprint) by hand-appending a fingerprint-7 journal's line.
        let other_dir = tmp_dir("stale_other");
        let mut j7 = CheckpointJournal::open(&spec(&other_dir), 7, &plan).unwrap();
        j7.commit(Stage::Proxy, &sample(1)).unwrap();
        j7.commit(Stage::KEstimation, &sample(2)).unwrap();
        let foreign = std::fs::read_to_string(j7.manifest_path()).unwrap();
        let foreign_line = foreign.lines().nth(1).unwrap();
        let manifest = j8.manifest_path();
        let mut text = std::fs::read_to_string(&manifest).unwrap();
        text.push_str(foreign_line);
        text.push('\n');
        std::fs::write(&manifest, text).unwrap();
        let r = CheckpointJournal::open(&spec(&dir).resuming(), 8, &plan).unwrap();
        assert_eq!(r.resume_report(), ResumeReport { resumed: 1, discarded: 1 });
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&other_dir).ok();
    }

    #[test]
    fn transient_io_is_retried_with_counted_backoff() {
        let dir = tmp_dir("retry");
        let mut plan = FaultPlan::default();
        plan.fail_io_attempt(0).fail_io_attempt(1);
        let mut j = CheckpointJournal::open(&spec(&dir), 7, &plan).unwrap();
        j.commit(Stage::Proxy, &sample(2)).unwrap();
        // Two injected failures → two retries, virtual backoff 1 + 2.
        assert_eq!(j.virtual_backoff(), 3);
        assert_eq!(j.records(), 1);
        // The journal is intact despite the turbulence.
        let r = CheckpointJournal::open(&spec(&dir).resuming(), 7, &FaultPlan::default())
            .unwrap();
        assert_eq!(r.fetch::<Payload>(Stage::Proxy), Some(sample(2)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_surface_the_typed_error() {
        let dir = tmp_dir("exhaust");
        let mut plan = FaultPlan::default();
        for ordinal in 0..8 {
            plan.fail_io_attempt(ordinal);
        }
        let mut cfg = spec(&dir);
        cfg.retry_budget = 2;
        let mut j = CheckpointJournal::open(&cfg, 7, &plan).unwrap();
        match j.commit(Stage::Proxy, &sample(2)) {
            Err(FalccError::RetriesExhausted { op, attempts }) => {
                assert_eq!(op, "checkpoint record write");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_config_and_data_but_not_threads() {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = 120;
        let a = generate(&dcfg, 1).unwrap();
        let b = generate(&dcfg, 2).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let base = fingerprint(&cfg, &a, &b);
        assert_eq!(base, fingerprint(&cfg, &a, &b), "fingerprint is a pure function");

        let mut threaded = cfg.clone();
        threaded.threads = 8;
        assert_eq!(base, fingerprint(&threaded, &a, &b), "threads are excluded");

        let mut seeded = cfg.clone();
        seeded.seed = 99;
        assert_ne!(base, fingerprint(&seeded, &a, &b));
        let mut knobs = cfg.clone();
        knobs.gap_fill_k += 1;
        assert_ne!(base, fingerprint(&knobs, &a, &b));
        assert_ne!(base, fingerprint(&cfg, &b, &a), "data order matters");
    }

    #[test]
    fn projection_digest_is_value_sensitive() {
        let d1 = ProjectionDigest::of(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let d2 = ProjectionDigest::of(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d1, d2);
        let d3 = ProjectionDigest::of(2, 2, &[1.0, 2.0, 3.0, 4.0000001]);
        assert_ne!(d1, d3);
    }
}
