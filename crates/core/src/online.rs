//! The FALCC online phase (paper §3.7): sample processing → cluster
//! matching → model lookup → classification.
//!
//! All three steps are cheap: projecting the sample is O(d), the nearest
//! centroid scan is O(k·d), and the model lookup is O(1). Compare with
//! FALCES, which per sample computes kNN over the validation set *and*
//! assesses every model combination on those neighbours.

use crate::error::RowFault;
use crate::faults::FaultSite;
use crate::framework::FairClassifier;
use crate::offline::FalccModel;
use falcc_dataset::{AttrId, GroupId, GroupIndex};
use falcc_models::parallel_map_range;

/// Single-row projections at or below this width use a stack buffer
/// instead of a heap allocation (FALCC's non-sensitive projections are a
/// handful of attributes; anything wider falls back to a `Vec`).
pub(crate) const PROJ_STACK_DIMS: usize = 32;

/// Left-to-right squared Euclidean distance — shared by both serving
/// planes to feed the live monitors' distance-to-centroid digests, so the
/// streams agree bit-for-bit (the offline fallback resolver uses the same
/// arithmetic).
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Projects `row` into `out` — the same arithmetic, in the same order, as
/// [`falcc_dataset::Dataset::project_row`], writing into caller-provided
/// storage instead of allocating.
pub(crate) fn project_row_into(
    row: &[f64],
    attrs: &[AttrId],
    weights: Option<&[f64]>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), attrs.len());
    match weights {
        Some(w) => {
            for ((o, &a), &wa) in out.iter_mut().zip(attrs).zip(w) {
                *o = row[a] * wa;
            }
        }
        None => {
            for (o, &a) in out.iter_mut().zip(attrs) {
                *o = row[a];
            }
        }
    }
}

/// Row validation shared by the interpreted and compiled serving planes —
/// both defer to this one function so the fault order (width, then
/// finiteness, then group domain) can never drift between them.
/// Resolving the group *is* the domain check, so callers must not look it
/// up again.
///
/// # Errors
/// The first [`RowFault`] detected.
pub(crate) fn validate_row_against(
    n_attrs: usize,
    group_index: &GroupIndex,
    row: &[f64],
) -> Result<GroupId, RowFault> {
    if row.len() != n_attrs {
        return Err(RowFault::WrongWidth { expected: n_attrs, found: row.len() });
    }
    if let Some(column) = row.iter().position(|v| !v.is_finite()) {
        return Err(RowFault::NonFinite { column });
    }
    group_index.group_of(row).map_err(|_| RowFault::GroupOutOfDomain)
}

impl FalccModel {
    /// Step 2 of the online phase: which local region a (full-width) sample
    /// falls into. Exposed separately so the evaluation can compute local
    /// bias on the test set with FALCC's own regions.
    pub fn assign_region(&self, row: &[f64]) -> usize {
        let projected = self.proxy_outcome().project_row(row);
        // Norm-pruned nearest-centroid match: bit-identical to
        // `kmeans().predict(..)` (see the clustering crate's kmeans docs),
        // just cheaper per sample.
        self.kmeans().predict_pruned(&projected, self.centroid_norms())
    }

    /// The full online phase for one sample.
    ///
    /// # Panics
    /// Panics if the row is malformed — wrong width, non-finite values, or
    /// sensitive values outside the declared domains. Callers holding
    /// unvalidated rows should use [`Self::try_classify`] instead.
    pub fn classify(&self, row: &[f64]) -> u8 {
        match self.try_classify(row) {
            Ok(z) => z,
            Err(fault) => panic!("cannot classify row: {fault}"),
        }
    }

    /// The full online phase for one sample, rejecting malformed rows with
    /// a typed [`RowFault`] instead of panicking: wrong attribute count,
    /// NaN/infinite features, or out-of-domain sensitive values.
    ///
    /// # Errors
    /// The first [`RowFault`] detected, checked in that order.
    pub fn try_classify(&self, row: &[f64]) -> Result<u8, RowFault> {
        // The monitor gate is one acquire load; when no monitor is
        // installed the path below computes exactly what it always did.
        let monitoring = falcc_telemetry::monitor::active();
        let t0 = monitoring.then(std::time::Instant::now);
        // Validation resolves the sensitive group as a side effect; thread
        // it through instead of looking it up a second time.
        let group = match self.validate_row(row) {
            Ok(g) => g,
            Err(fault) => {
                falcc_telemetry::counters::ONLINE_ROWS_REJECTED.incr();
                if monitoring {
                    falcc_telemetry::monitor::single(
                        None,
                        None,
                        t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    );
                }
                return Err(fault);
            }
        };
        let proxy = self.proxy_outcome();
        // Steady-state the single-row path allocates nothing: the
        // projection lands in a stack buffer (same arithmetic as the
        // heap-allocating `project_row`, so the same prediction).
        let mut stack = [0.0f64; PROJ_STACK_DIMS];
        let heap;
        let projected: &[f64] = if proxy.attrs.len() <= PROJ_STACK_DIMS {
            let buf = &mut stack[..proxy.attrs.len()];
            project_row_into(row, &proxy.attrs, proxy.weights.as_deref(), buf);
            buf
        } else {
            heap = proxy.project_row(row);
            &heap
        };
        let (pred, region) = self.classify_routed_in(row, projected, group);
        if monitoring {
            falcc_telemetry::monitor::single(
                Some((
                    region,
                    group.index(),
                    sq_dist(projected, &self.kmeans().centroids[region]),
                )),
                Some(pred),
                t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }
        Ok(pred)
    }

    /// Validation shared by the single-row and batch entry points,
    /// returning the row's sensitive group on success — resolving the
    /// group *is* the domain check, so callers must not look it up again.
    ///
    /// # Errors
    /// The first [`RowFault`] detected: width, then finiteness, then
    /// group domain.
    pub(crate) fn validate_row(&self, row: &[f64]) -> Result<GroupId, RowFault> {
        validate_row_against(self.schema().n_attrs(), self.group_index(), row)
    }

    /// Classification of one sample whose projection is already computed
    /// and whose sensitive group is already resolved — the batch paths
    /// project a whole batch into one flat buffer and feed each row's
    /// slice here, instead of allocating one projection per call. The
    /// projection arithmetic is identical either way, so so is the
    /// prediction. Returns the prediction *and* the matched region, which
    /// the callers feed to the live monitors.
    fn classify_routed_in(&self, row: &[f64], projected: &[f64], group: GroupId) -> (u8, usize) {
        // Both arms run the identical match; the enabled arm additionally
        // times it. The disabled path never reads the clock.
        let cluster = if falcc_telemetry::enabled() {
            let t0 = std::time::Instant::now();
            let cluster = self.kmeans().predict_pruned(projected, self.centroid_norms());
            falcc_telemetry::histograms::ONLINE_MATCH_NS.record_ns(t0.elapsed());
            falcc_telemetry::counters::ONLINE_SAMPLES.incr();
            cluster
        } else {
            self.kmeans().predict_pruned(projected, self.centroid_norms())
        };
        let model_idx = self.combo(cluster)[group.index()];
        (self.pool().models[model_idx].model.predict_row(row), cluster)
    }

    /// The online phase for a batch of samples, fanned out over worker
    /// threads ([`Self::threads`], 0 = available parallelism).
    ///
    /// Each sample's classification is independent — region assignment,
    /// combination lookup, and model prediction read only shared fitted
    /// state — and results come back in input order, so the output equals
    /// `rows.iter().map(|r| self.try_classify(r))` exactly, for every
    /// thread count.
    ///
    /// Malformed rows degrade to a per-row [`RowFault`] — one poisoned
    /// sample never poisons (or panics) the rest of the batch. Rows armed
    /// as [`FaultSite::NonFiniteRow`] in the model's fault plan are
    /// rejected as if they carried a NaN in column 0.
    pub fn classify_batch(&self, rows: &[Vec<f64>]) -> Vec<Result<u8, RowFault>> {
        let _sp = falcc_telemetry::span("online.classify_batch");
        // One ordinal block per batch; workers stash routes lock-free and
        // the fold happens once at the end, so window contents are
        // identical for every thread count.
        let rec = falcc_telemetry::monitor::batch(rows.len());
        let t0 = rec.as_ref().map(|_| std::time::Instant::now());
        let proxy = self.proxy_outcome();
        let plan = self.fault_plan();
        // Validation comes first because the shared projection pass
        // indexes every row by schema position — a short row would fault
        // inside projection, before any per-row error could be produced.
        // It also resolves each valid row's group, consumed downstream
        // instead of a second lookup.
        let checked: Vec<Result<GroupId, RowFault>> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                if plan.fires(FaultSite::NonFiniteRow, i as u64) {
                    return Err(RowFault::NonFinite { column: 0 });
                }
                self.validate_row(row)
            })
            .collect();
        let rejected = checked.iter().filter(|r| r.is_err()).count();
        let out = if rejected == 0 {
            // Happy path: one flat projection buffer for the whole batch.
            let projected = falcc_dataset::Dataset::project_rows(
                rows,
                &proxy.attrs,
                proxy.weights.as_deref(),
            );
            parallel_map_range(rows.len(), self.threads(), |i| match &checked[i] {
                Ok(group) => {
                    let (pred, region) =
                        self.classify_routed_in(&rows[i], projected.row(i), *group);
                    if let Some(rec) = &rec {
                        rec.stash(
                            i,
                            region,
                            group.index(),
                            sq_dist(projected.row(i), &self.kmeans().centroids[region]),
                        );
                    }
                    Ok(pred)
                }
                Err(fault) => Err(fault.clone()),
            })
        } else {
            falcc_telemetry::counters::ONLINE_ROWS_REJECTED.add(rejected as u64);
            if falcc_telemetry::enabled() {
                falcc_telemetry::event(
                    "online.rows_rejected",
                    format!("{rejected} of {} batch rows rejected", rows.len()),
                );
            }
            // Degraded path: substitute a neutral stand-in for each
            // rejected row so the batch projection stays shape-safe, then
            // surface the recorded fault instead of the stand-in's
            // prediction.
            let stand_in = vec![0.0; self.schema().n_attrs()];
            let safe: Vec<Vec<f64>> = rows
                .iter()
                .zip(&checked)
                .map(|(row, check)| if check.is_err() { stand_in.clone() } else { row.clone() })
                .collect();
            let projected = falcc_dataset::Dataset::project_rows(
                &safe,
                &proxy.attrs,
                proxy.weights.as_deref(),
            );
            parallel_map_range(rows.len(), self.threads(), |i| match &checked[i] {
                Ok(group) => {
                    let (pred, region) =
                        self.classify_routed_in(&rows[i], projected.row(i), *group);
                    if let Some(rec) = &rec {
                        rec.stash(
                            i,
                            region,
                            group.index(),
                            sq_dist(projected.row(i), &self.kmeans().centroids[region]),
                        );
                    }
                    Ok(pred)
                }
                Err(fault) => Err(fault.clone()),
            })
        };
        if let (Some(rec), Some(t0)) = (rec, t0) {
            // Rejected rows never stashed a route; commit folds them into
            // the window's rejection tally.
            rec.commit(|i| out[i].as_ref().ok().copied(), t0.elapsed().as_nanos() as u64);
        }
        out
    }
}

impl FairClassifier for FalccModel {
    fn predict_row(&self, row: &[f64]) -> u8 {
        self.classify(row)
    }

    fn name(&self) -> &str {
        self.name_str()
    }

    /// Batched override of the default row-by-row loop: same results
    /// (ordered merge, no per-thread state, one batch-level projection
    /// buffer instead of one allocation per sample), higher throughput.
    fn predict_dataset(&self, ds: &falcc_dataset::Dataset) -> Vec<u8> {
        let _sp = falcc_telemetry::span("online.classify_batch");
        let rec = falcc_telemetry::monitor::batch(ds.len());
        let t0 = rec.as_ref().map(|_| std::time::Instant::now());
        let proxy = self.proxy_outcome();
        let projected = ds.project(&proxy.attrs, proxy.weights.as_deref());
        let preds = parallel_map_range(ds.len(), self.threads(), |i| {
            // Dataset rows passed schema validation at construction; a
            // group lookup can only fail on an unvalidated row.
            let group = match self.group_index().group_of(ds.row(i)) {
                Ok(g) => g,
                Err(_) => {
                    panic!("caller passed an unvalidated row: {}", RowFault::GroupOutOfDomain)
                }
            };
            let (pred, region) = self.classify_routed_in(ds.row(i), projected.row(i), group);
            if let Some(rec) = &rec {
                rec.stash(
                    i,
                    region,
                    group.index(),
                    sq_dist(projected.row(i), &self.kmeans().centroids[region]),
                );
            }
            pred
        });
        if let (Some(rec), Some(t0)) = (rec, t0) {
            rec.commit(|i| Some(preds[i]), t0.elapsed().as_nanos() as u64);
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FalccConfig;
    use crate::framework::FairClassifier;
    use crate::offline::FalccModel;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn fitted(n: usize, seed: u64) -> (FalccModel, ThreeWaySplit) {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = n;
        let ds = generate(&dcfg, seed).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        (model, split)
    }

    #[test]
    fn predictions_are_binary_and_deterministic() {
        let (model, split) = fitted(800, 1);
        let a = model.predict_dataset(&split.test);
        let b = model.predict_dataset(&split.test);
        assert_eq!(a, b);
        assert!(a.iter().all(|&z| z <= 1));
        assert_eq!(a.len(), split.test.len());
    }

    #[test]
    fn accuracy_is_well_above_chance() {
        let (model, split) = fitted(1500, 2);
        let preds = model.predict_dataset(&split.test);
        let acc = accuracy(split.test.labels(), &preds);
        assert!(acc > 0.65, "accuracy {acc}");
    }

    #[test]
    fn fairness_is_better_than_the_labels() {
        // The social30 labels carry a 30-point parity gap; FALCC's
        // predictions should shrink it.
        let (model, split) = fitted(3000, 3);
        let preds = model.predict_dataset(&split.test);
        let label_bias = FairnessMetric::DemographicParity.bias(
            split.test.labels(),
            split.test.labels(),
            split.test.groups(),
            2,
        );
        let pred_bias = FairnessMetric::DemographicParity.bias(
            split.test.labels(),
            &preds,
            split.test.groups(),
            2,
        );
        assert!(
            pred_bias < label_bias,
            "prediction bias {pred_bias} should undercut label bias {label_bias}"
        );
    }

    #[test]
    fn region_assignment_is_stable_and_in_range() {
        let (model, split) = fitted(800, 4);
        for i in 0..split.test.len().min(100) {
            let r = model.assign_region(split.test.row(i));
            assert!(r < model.n_regions());
            assert_eq!(r, model.assign_region(split.test.row(i)));
        }
    }

    #[test]
    fn similar_samples_in_different_groups_may_get_different_models() {
        // The running-example property: the classification routes through
        // the group-specific member of the cluster's combination.
        let (model, split) = fitted(800, 5);
        let mut saw_group_divergence = false;
        for c in 0..model.n_regions() {
            let combo = model.combo(c);
            if combo[0] != combo[1] {
                saw_group_divergence = true;
            }
        }
        // Not guaranteed for every run, but with a diverse pool across 4
        // clusters at least one cluster usually differentiates; if not,
        // the model still must classify coherently.
        let preds = model.predict_dataset(&split.test);
        assert_eq!(preds.len(), split.test.len());
        let _ = saw_group_divergence;
    }

    #[test]
    fn name_reports_falcc() {
        let (model, _) = fitted(600, 6);
        assert_eq!(model.name(), "FALCC");
    }

    #[test]
    fn malformed_rows_get_typed_faults_not_panics() {
        use crate::error::RowFault;
        let (model, split) = fitted(700, 7);
        let good = split.test.row(0).to_vec();
        assert!(model.try_classify(&good).is_ok());

        let short = vec![0.0];
        assert!(matches!(
            model.try_classify(&short),
            Err(RowFault::WrongWidth { found: 1, .. })
        ));

        let mut poisoned = good.clone();
        poisoned[2] = f64::NAN;
        assert_eq!(model.try_classify(&poisoned), Err(RowFault::NonFinite { column: 2 }));

        let mut alien = good.clone();
        alien[0] = 42.0; // sensitive attribute outside {0, 1}
        assert_eq!(model.try_classify(&alien), Err(RowFault::GroupOutOfDomain));
    }

    #[test]
    fn one_poisoned_row_does_not_poison_the_batch() {
        use crate::error::RowFault;
        let (model, split) = fitted(700, 8);
        let mut rows: Vec<Vec<f64>> =
            (0..10).map(|i| split.test.row(i).to_vec()).collect();
        rows[4][1] = f64::INFINITY;
        rows[7] = vec![1.0, 2.0]; // wrong width
        let out = model.classify_batch(&rows);
        assert_eq!(out.len(), 10);
        assert_eq!(out[4], Err(RowFault::NonFinite { column: 1 }));
        assert!(matches!(out[7], Err(RowFault::WrongWidth { found: 2, .. })));
        for (i, r) in out.iter().enumerate() {
            if i != 4 && i != 7 {
                assert_eq!(*r, Ok(model.classify(&rows[i])), "row {i}");
            }
        }
    }

    #[test]
    fn injected_row_faults_reject_exactly_the_armed_rows() {
        let (mut model, split) = fitted(700, 9);
        let rows: Vec<Vec<f64>> =
            (0..8).map(|i| split.test.row(i).to_vec()).collect();
        let clean: Vec<u8> =
            model.classify_batch(&rows).into_iter().map(|r| r.unwrap()).collect();
        let mut plan = crate::faults::FaultPlan::default();
        plan.poison_row(3);
        model.set_fault_plan(plan);
        let out = model.classify_batch(&rows);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r, Ok(clean[i]), "row {i} unaffected by injection");
            }
        }
    }
}
