//! The FALCC online phase (paper §3.7): sample processing → cluster
//! matching → model lookup → classification.
//!
//! All three steps are cheap: projecting the sample is O(d), the nearest
//! centroid scan is O(k·d), and the model lookup is O(1). Compare with
//! FALCES, which per sample computes kNN over the validation set *and*
//! assesses every model combination on those neighbours.

use crate::framework::FairClassifier;
use crate::offline::FalccModel;
use falcc_models::parallel_map_range;

impl FalccModel {
    /// Step 2 of the online phase: which local region a (full-width) sample
    /// falls into. Exposed separately so the evaluation can compute local
    /// bias on the test set with FALCC's own regions.
    pub fn assign_region(&self, row: &[f64]) -> usize {
        let projected = self.proxy_outcome().project_row(row);
        // Norm-pruned nearest-centroid match: bit-identical to
        // `kmeans().predict(..)` (see the clustering crate's kmeans docs),
        // just cheaper per sample.
        self.kmeans().predict_pruned(&projected, self.centroid_norms())
    }

    /// The full online phase for one sample.
    ///
    /// # Panics
    /// Panics if the row's sensitive values are outside the declared
    /// domains (callers classify samples drawn from the same schema).
    pub fn classify(&self, row: &[f64]) -> u8 {
        let projected = self.proxy_outcome().project_row(row);
        self.classify_projected(row, &projected)
    }

    /// Classification of one sample whose projection is already computed —
    /// the batch paths project a whole batch into one flat buffer and feed
    /// each row's slice here, instead of allocating one projection per
    /// call. The projection arithmetic is identical either way, so so is
    /// the prediction.
    fn classify_projected(&self, row: &[f64], projected: &[f64]) -> u8 {
        let group = self
            .group_index()
            .group_of(row)
            .expect("sample's sensitive attributes must be in-domain");
        // Both arms run the identical match; the enabled arm additionally
        // times it. The disabled path never reads the clock.
        let cluster = if falcc_telemetry::enabled() {
            let t0 = std::time::Instant::now();
            let cluster = self.kmeans().predict_pruned(projected, self.centroid_norms());
            falcc_telemetry::histograms::ONLINE_MATCH_NS.record_ns(t0.elapsed());
            falcc_telemetry::counters::ONLINE_SAMPLES.incr();
            cluster
        } else {
            self.kmeans().predict_pruned(projected, self.centroid_norms())
        };
        let model_idx = self.combo(cluster)[group.index()];
        self.pool().models[model_idx].model.predict_row(row)
    }

    /// The online phase for a batch of samples, fanned out over worker
    /// threads ([`Self::threads`], 0 = available parallelism).
    ///
    /// Each sample's classification is independent — region assignment,
    /// combination lookup, and model prediction read only shared fitted
    /// state — and results come back in input order, so the output equals
    /// `rows.iter().map(|r| self.classify(r))` exactly, for every thread
    /// count.
    ///
    /// # Panics
    /// As [`Self::classify`], if a row's sensitive values are
    /// out-of-domain.
    pub fn classify_batch(&self, rows: &[Vec<f64>]) -> Vec<u8> {
        let _sp = falcc_telemetry::span("online.classify_batch");
        let proxy = self.proxy_outcome();
        let projected = falcc_dataset::Dataset::project_rows(
            rows,
            &proxy.attrs,
            proxy.weights.as_deref(),
        );
        parallel_map_range(rows.len(), self.threads(), |i| {
            self.classify_projected(&rows[i], projected.row(i))
        })
    }
}

impl FairClassifier for FalccModel {
    fn predict_row(&self, row: &[f64]) -> u8 {
        self.classify(row)
    }

    fn name(&self) -> &str {
        self.name_str()
    }

    /// Batched override of the default row-by-row loop: same results
    /// (ordered merge, no per-thread state, one batch-level projection
    /// buffer instead of one allocation per sample), higher throughput.
    fn predict_dataset(&self, ds: &falcc_dataset::Dataset) -> Vec<u8> {
        let _sp = falcc_telemetry::span("online.classify_batch");
        let proxy = self.proxy_outcome();
        let projected = ds.project(&proxy.attrs, proxy.weights.as_deref());
        parallel_map_range(ds.len(), self.threads(), |i| {
            self.classify_projected(ds.row(i), projected.row(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FalccConfig;
    use crate::framework::FairClassifier;
    use crate::offline::FalccModel;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};
    use falcc_metrics::{accuracy, FairnessMetric};

    fn fitted(n: usize, seed: u64) -> (FalccModel, ThreeWaySplit) {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = n;
        let ds = generate(&dcfg, seed).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        (model, split)
    }

    #[test]
    fn predictions_are_binary_and_deterministic() {
        let (model, split) = fitted(800, 1);
        let a = model.predict_dataset(&split.test);
        let b = model.predict_dataset(&split.test);
        assert_eq!(a, b);
        assert!(a.iter().all(|&z| z <= 1));
        assert_eq!(a.len(), split.test.len());
    }

    #[test]
    fn accuracy_is_well_above_chance() {
        let (model, split) = fitted(1500, 2);
        let preds = model.predict_dataset(&split.test);
        let acc = accuracy(split.test.labels(), &preds);
        assert!(acc > 0.65, "accuracy {acc}");
    }

    #[test]
    fn fairness_is_better_than_the_labels() {
        // The social30 labels carry a 30-point parity gap; FALCC's
        // predictions should shrink it.
        let (model, split) = fitted(3000, 3);
        let preds = model.predict_dataset(&split.test);
        let label_bias = FairnessMetric::DemographicParity.bias(
            split.test.labels(),
            split.test.labels(),
            split.test.groups(),
            2,
        );
        let pred_bias = FairnessMetric::DemographicParity.bias(
            split.test.labels(),
            &preds,
            split.test.groups(),
            2,
        );
        assert!(
            pred_bias < label_bias,
            "prediction bias {pred_bias} should undercut label bias {label_bias}"
        );
    }

    #[test]
    fn region_assignment_is_stable_and_in_range() {
        let (model, split) = fitted(800, 4);
        for i in 0..split.test.len().min(100) {
            let r = model.assign_region(split.test.row(i));
            assert!(r < model.n_regions());
            assert_eq!(r, model.assign_region(split.test.row(i)));
        }
    }

    #[test]
    fn similar_samples_in_different_groups_may_get_different_models() {
        // The running-example property: the classification routes through
        // the group-specific member of the cluster's combination.
        let (model, split) = fitted(800, 5);
        let mut saw_group_divergence = false;
        for c in 0..model.n_regions() {
            let combo = model.combo(c);
            if combo[0] != combo[1] {
                saw_group_divergence = true;
            }
        }
        // Not guaranteed for every run, but with a diverse pool across 4
        // clusters at least one cluster usually differentiates; if not,
        // the model still must classify coherently.
        let preds = model.predict_dataset(&split.test);
        assert_eq!(preds.len(), split.test.len());
        let _ = saw_group_divergence;
    }

    #[test]
    fn name_reports_falcc() {
        let (model, _) = fitted(600, 6);
        assert_eq!(model.name(), "FALCC");
    }
}
