//! # falcc — Fair and Accurate Local Classifications by leveraging Clusters
//!
//! Rust implementation of the FALCC framework (Lässig & Herschel, *FALCC:
//! Efficiently performing locally fair and accurate classifications*, EDBT
//! 2024).
//!
//! FALCC targets **local fairness**: a global group-fairness metric should
//! hold not only over the whole population but inside every *local region*
//! of similar individuals. It achieves this efficiently by moving all the
//! expensive work into an **offline phase**:
//!
//! 1. **Diverse model training** (§3.3) — a hyper-tuned grid of AdaBoost /
//!    random-forest models, pruned to a maximally diverse pool `M`, and the
//!    candidate combinations `MC_cand` (one model per sensitive group).
//! 2. **Proxy-discrimination mitigation** (§3.4) — Pearson-correlation
//!    based *reweighing* or *removal* of proxy attributes before
//!    clustering.
//! 3. **Clustering** (§3.5) — k-means over the non-sensitive projection of
//!    the validation set (k via LOG-Means), with kNN *gap-filling* so every
//!    cluster has representatives of every group.
//! 4. **Model assessment** (§3.6) — per cluster, every combination is
//!    scored with `L̂ = λ·inaccuracy + (1−λ)·bias` and the best one kept.
//!
//! The **online phase** (§3.7) is then a nearest-centroid lookup plus a
//! single model invocation — the efficiency claim of the paper's Fig. 6.
//!
//! ## Quick start
//!
//! ```
//! use falcc::{FairClassifier, FalccConfig, FalccModel};
//! use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
//!
//! let data = synthetic::social30(42).unwrap();
//! let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 42).unwrap();
//! let mut config = FalccConfig::default();
//! config.scale_for_tests(); // keep the doctest fast
//! let model = FalccModel::fit(&split.train, &split.validation, &config).unwrap();
//! let prediction = model.predict_row(split.test.row(0));
//! assert!(prediction <= 1);
//! ```
//!
//! The framework is deliberately *general* (paper §3.1): setting the
//! cluster count to 1 recovers global fairness, and swapping the
//! assessment metric moves between the Tab. 3 definitions — both are plain
//! configuration here.
//!
//! ## Robustness
//!
//! The pipeline degrades gracefully instead of panicking: failed pool
//! members are quarantined (down to [`FalccConfig::min_pool_size`]),
//! degenerate or group-starved regions borrow model choices from the
//! nearest covering region (globally-best combination as the last
//! resort), malformed online rows surface as per-row
//! [`error::RowFault`]s, and snapshots are checksummed end to end. The
//! [`faults`] module provides the deterministic injection harness the
//! robustness suite drives all of this with; `clippy::unwrap_used` /
//! `clippy::expect_used` are denied in non-test code.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
pub mod baseline;
pub mod checkpoint;
pub mod compile;
pub mod config;
pub mod error;
pub mod faults;
pub mod framework;
pub mod io;
pub mod offline;
pub mod online;
pub mod persist;
pub mod proxy;
pub mod tuning;

pub use artifact::{sibling_artifact_path, CompiledModelBuf};
pub use baseline::MonitorBaseline;
pub use checkpoint::{CheckpointJournal, CheckpointSpec};
pub use compile::CompiledModel;
pub use config::{ClusterSpec, FalccConfig};
pub use error::{FalccError, RowFault};
pub use faults::{CrashPhase, CrashPoint, FaultPlan, FaultSite};
pub use framework::FairClassifier;
pub use offline::FalccModel;
pub use persist::SavedFalccModel;
pub use proxy::{ProxyOutcome, ProxyStrategy};
pub use tuning::{auto_tune, TuningReport};
