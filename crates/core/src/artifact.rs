//! Binary serving artifacts (v3): the compiled plane, persisted.
//!
//! [`crate::persist`] ships fitted models as JSON — robust and
//! diff-friendly, but every serving start pays for parsing the text
//! envelope, rebuilding the pool, and re-lowering it into the flat
//! serving plane. This module persists the *result* of that work: a
//! [`crate::CompiledModel`] written as a sectioned little-endian binary
//! container, so a cold start is one file read, checksum validation, and
//! validated bulk copies into the flat slabs — no per-field parsing, no
//! tree lowering.
//!
//! ## Container layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "falccbv3"
//! 8       4     format version (little-endian u32, currently 3)
//! 12      4     section count (always 12)
//! 16      8     source fingerprint: FNV-1a-64 of the JSON snapshot's
//!               on-disk bytes this artifact was compiled from
//! 24      8     file checksum: FNV-1a-64 of every byte from offset 32
//! 32      12×32 section table; per entry:
//!               {id u32, kind u32, offset u64, len u64, checksum u64}
//! ...           section bodies, each at an 8-aligned offset, padded
//!               with zeros between sections
//! ```
//!
//! Sections, in fixed id order: the JSON metadata blob (schema, group
//! index, proxy projection, name, shape, opaque member specs), the four
//! node-arena slabs, member footprints/records/payloads, the centroid
//! data + norms, and the dispatch table. Numeric sections are raw
//! little-endian `f64`/`u32` runs whose length must divide 8 / 4.
//!
//! ## Validation
//!
//! [`CompiledModelBuf::from_bytes`] verifies the magic, version, section
//! count, whole-file checksum, and for every table entry: fixed id order,
//! expected kind, 8-byte alignment, in-bounds non-overlapping extent, and
//! the per-section checksum. [`CompiledModelBuf::load`] then re-validates
//! every structural invariant the serving plane relies on (node links,
//! attribute bounds, payload shapes, dispatch reach) through
//! [`falcc_models::FlatPool::from_parts`] /
//! [`falcc_clustering::CentroidMatrix::from_raw`]. Any damage — bit
//! flips, truncation, misalignment — surfaces as a typed
//! [`FalccError::ArtifactCorrupt`] / [`FalccError::ArtifactVersionSkew`],
//! never as UB or a panic; decoding uses no `unsafe`.
//!
//! ## Staleness
//!
//! The header records the FNV-1a-64 fingerprint of the JSON snapshot the
//! artifact was compiled from. [`CompiledModelBuf::load_if_fresh`]
//! rejects a mismatch as [`FalccError::ArtifactStale`], and serving
//! callers fall back to the JSON restore+compile path (counted in
//! `serve.artifact_fallbacks`).
//!
//! ## Sharing
//!
//! [`CompiledModelBuf`] owns the raw bytes; [`CompiledModelBuf::load`]
//! borrows them and can be called repeatedly — N replicas or test
//! harnesses share one read-only buffer and materialise independent
//! [`crate::CompiledModel`]s from it.
//!
//! **Equivalence contract**: a loaded artifact classifies bit-identically
//! to the JSON→restore→compile path — same `Result<u8, RowFault>`
//! sequences at every thread count. The `compiled_equivalence` suite and
//! the `exp_artifacts --smoke` CI gate pin this.

use crate::compile::{CompiledModel, ServeMeta};
use crate::error::FalccError;
use crate::faults::FaultPlan;
use crate::io::{atomic_durable_write, fnv1a64};
use crate::proxy::ProxyOutcome;
use falcc_clustering::CentroidMatrix;
use falcc_dataset::{GroupIndex, Schema};
use falcc_models::{Classifier, FlatPool, FlatPoolParts, ModelSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 3;

/// File extension serving callers probe for next to a JSON snapshot.
pub const ARTIFACT_EXTENSION: &str = "falccb";

const MAGIC: [u8; 8] = *b"falccbv3";
const HEADER_LEN: usize = 32;
const ENTRY_LEN: usize = 32;
const N_SECTIONS: usize = 12;

/// Section kinds: raw little-endian `f64` slab, `u32` slab, or opaque
/// bytes (the JSON metadata blob).
const K_F64: u32 = 0;
const K_U32: u32 = 1;
const K_BYTES: u32 = 2;

/// Section ids, in the fixed order they appear in the table and file.
const S_META: usize = 0;
const S_NODE_THR: usize = 1;
const S_NODE_FEAT: usize = 2;
const S_NODE_LEFT: usize = 3;
const S_NODE_PROBA: usize = 4;
const S_FOOTPRINTS: usize = 5;
const S_MEMBER_RECS: usize = 6;
const S_MEMBER_U32: usize = 7;
const S_MEMBER_F64: usize = 8;
const S_CENTROID_DATA: usize = 9;
const S_CENTROID_NORMS: usize = 10;
const S_DISPATCH: usize = 11;

/// Expected kind of each section id.
fn kind_of(id: usize) -> u32 {
    match id {
        S_META => K_BYTES,
        S_NODE_FEAT | S_NODE_LEFT | S_FOOTPRINTS | S_MEMBER_RECS | S_MEMBER_U32
        | S_DISPATCH => K_U32,
        _ => K_F64,
    }
}

/// Typed rejection + telemetry on one line.
fn corrupt(detail: impl Into<String>) -> FalccError {
    falcc_telemetry::counters::ARTIFACTS_REJECTED.incr();
    FalccError::ArtifactCorrupt { detail: detail.into() }
}

/// Everything that has no flat numeric form: validation metadata and the
/// serialised specs of opaque pool members. Small, so it travels as one
/// JSON blob inside the binary container.
#[derive(Serialize, Deserialize)]
struct ArtifactMeta {
    schema: Schema,
    group_index: GroupIndex,
    proxy: ProxyOutcome,
    name: String,
    n_groups: u32,
    n_cols: u32,
    opaque_specs: Vec<ModelSpec>,
}

fn u32le(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn u64le(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
        bytes[at + 4],
        bytes[at + 5],
        bytes[at + 6],
        bytes[at + 7],
    ])
}

fn encode_f64(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn encode_u32(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Bulk copy of a validated section body (length already known to divide
/// 8) into an `f64` slab — `to_le_bytes` round-trips every bit pattern,
/// so the slab is bit-identical to the one the writer held.
fn decode_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

fn decode_u32(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// The sibling path serving callers probe for a binary artifact next to
/// a JSON snapshot: the snapshot path with its extension replaced by
/// `.falccb`.
pub fn sibling_artifact_path(model_path: &Path) -> PathBuf {
    model_path.with_extension(ARTIFACT_EXTENSION)
}

/// A validated artifact buffer: owns the raw bytes of one `.falccb` file
/// whose envelope (header, section table, checksums) has already been
/// verified. [`Self::load`] materialises a [`CompiledModel`] from it and
/// can be called any number of times — replicas share the buffer.
pub struct CompiledModelBuf {
    bytes: Vec<u8>,
    /// Validated `(offset, len)` of each section body, by section id.
    sections: [(usize, usize); N_SECTIONS],
    source_fingerprint: u64,
}

impl CompiledModelBuf {
    /// Reads and validates an artifact file.
    ///
    /// # Errors
    /// I/O failures, plus everything [`Self::from_bytes`] rejects.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, FalccError> {
        let bytes = std::fs::read(path)
            .map_err(|e| FalccError::Dataset(falcc_dataset::DatasetError::Io(e)))?;
        Self::from_bytes(bytes)
    }

    /// Validates the binary envelope: magic, version, section count,
    /// whole-file checksum, then every section-table entry (fixed id
    /// order, expected kind, 8-byte alignment, in-bounds non-overlapping
    /// extent, element-size divisibility, per-section checksum).
    ///
    /// # Errors
    /// [`FalccError::ArtifactCorrupt`] on any integrity failure;
    /// [`FalccError::ArtifactVersionSkew`] when an intact header was
    /// written by a different format version.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, FalccError> {
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {} bytes, smaller than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt(format!("bad magic {:?}", &bytes[..8])));
        }
        let version = u32le(&bytes, 8);
        if version != ARTIFACT_VERSION {
            falcc_telemetry::counters::ARTIFACTS_REJECTED.incr();
            return Err(FalccError::ArtifactVersionSkew {
                found: version,
                expected: ARTIFACT_VERSION,
            });
        }
        let n_sections = u32le(&bytes, 12) as usize;
        if n_sections != N_SECTIONS {
            return Err(corrupt(format!(
                "section count {n_sections}, this format always carries {N_SECTIONS}"
            )));
        }
        let source_fingerprint = u64le(&bytes, 16);
        let declared = u64le(&bytes, 24);
        let actual = fnv1a64(&bytes[HEADER_LEN..]);
        if declared != actual {
            return Err(corrupt(format!(
                "file checksum mismatch: declared {declared:016x}, bytes hash to {actual:016x}"
            )));
        }
        let table_end = HEADER_LEN + N_SECTIONS * ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(corrupt("truncated section table"));
        }
        let mut sections = [(0usize, 0usize); N_SECTIONS];
        let mut prev_end = table_end as u64;
        for (id, slot) in sections.iter_mut().enumerate() {
            let at = HEADER_LEN + id * ENTRY_LEN;
            let found_id = u32le(&bytes, at);
            let kind = u32le(&bytes, at + 4);
            let offset = u64le(&bytes, at + 8);
            let len = u64le(&bytes, at + 16);
            let checksum = u64le(&bytes, at + 24);
            if found_id as usize != id {
                return Err(corrupt(format!("table slot {id} carries section id {found_id}")));
            }
            if kind != kind_of(id) {
                return Err(corrupt(format!(
                    "section {id} carries kind {kind}, expected {}",
                    kind_of(id)
                )));
            }
            if !offset.is_multiple_of(8) {
                return Err(corrupt(format!("section {id} at misaligned offset {offset}")));
            }
            if offset < prev_end {
                return Err(corrupt(format!(
                    "section {id} at offset {offset} overlaps bytes before {prev_end}"
                )));
            }
            let end = offset
                .checked_add(len)
                .filter(|&end| end <= bytes.len() as u64)
                .ok_or_else(|| {
                    corrupt(format!("section {id} ({len} bytes at {offset}) escapes the file"))
                })?;
            let elem = match kind_of(id) {
                K_F64 => 8,
                K_U32 => 4,
                _ => 1,
            };
            if !len.is_multiple_of(elem) {
                return Err(corrupt(format!(
                    "section {id} length {len} is not a multiple of its {elem}-byte element"
                )));
            }
            let body = &bytes[offset as usize..end as usize];
            let actual = fnv1a64(body);
            if actual != checksum {
                return Err(corrupt(format!(
                    "section {id} checksum mismatch: declared {checksum:016x}, \
                     body hashes to {actual:016x}"
                )));
            }
            *slot = (offset as usize, len as usize);
            prev_end = end;
        }
        Ok(Self { bytes, sections, source_fingerprint })
    }

    /// The FNV-1a-64 fingerprint of the JSON snapshot this artifact was
    /// compiled from, as recorded in the header.
    pub fn source_fingerprint(&self) -> u64 {
        self.source_fingerprint
    }

    /// One section's body, borrowed from the shared buffer.
    fn section(&self, id: usize) -> &[u8] {
        let (offset, len) = self.sections[id];
        &self.bytes[offset..offset + len]
    }

    /// Materialises a ready-to-classify [`CompiledModel`] by validated
    /// bulk copies out of the buffer. The result is bit-identical to the
    /// JSON→restore→`compile()` model the artifact was written from; its
    /// thread count defaults to auto and its fault plan to empty, exactly
    /// like a JSON-restored model.
    ///
    /// # Errors
    /// [`FalccError::ArtifactCorrupt`] when the decoded slabs fail the
    /// serving plane's structural validation (impossible for artifacts
    /// that passed the checksums, short of a writer bug).
    pub fn load(&self) -> Result<CompiledModel, FalccError> {
        let meta_json = std::str::from_utf8(self.section(S_META))
            .map_err(|e| corrupt(format!("metadata is not UTF-8: {e}")))?;
        let meta: ArtifactMeta = serde_json::from_str(meta_json)
            .map_err(|e| corrupt(format!("unreadable metadata: {e}")))?;
        let parts = FlatPoolParts {
            node_thr: decode_f64(self.section(S_NODE_THR)),
            node_feat: decode_u32(self.section(S_NODE_FEAT)),
            node_left: decode_u32(self.section(S_NODE_LEFT)),
            node_proba: decode_f64(self.section(S_NODE_PROBA)),
            footprints: decode_u32(self.section(S_FOOTPRINTS)),
            member_recs: decode_u32(self.section(S_MEMBER_RECS)),
            member_u32: decode_u32(self.section(S_MEMBER_U32)),
            member_f64: decode_f64(self.section(S_MEMBER_F64)),
        };
        let opaque: Vec<Arc<dyn Classifier>> =
            meta.opaque_specs.into_iter().map(ModelSpec::into_classifier).collect();
        let pool = FlatPool::from_parts(parts, &opaque, meta.schema.n_attrs())
            .map_err(|d| corrupt(format!("pool slabs rejected: {d}")))?;
        let centroids = CentroidMatrix::from_raw(
            decode_f64(self.section(S_CENTROID_DATA)),
            decode_f64(self.section(S_CENTROID_NORMS)),
            meta.n_cols as usize,
        )
        .map_err(|d| corrupt(format!("centroid slab rejected: {d}")))?;
        let n_groups = meta.n_groups as usize;
        if n_groups != meta.group_index.len() {
            return Err(corrupt(format!(
                "{n_groups} dispatch groups for a {}-group index",
                meta.group_index.len()
            )));
        }
        if meta.proxy.attrs.len() != meta.n_cols as usize {
            return Err(corrupt(format!(
                "projection width {} does not match {}-wide centroids",
                meta.proxy.attrs.len(),
                meta.n_cols
            )));
        }
        let dispatch = decode_u32(self.section(S_DISPATCH));
        if dispatch.len() != centroids.k() * n_groups {
            return Err(corrupt(format!(
                "dispatch table holds {} cells, expected {} regions × {n_groups} groups",
                dispatch.len(),
                centroids.k()
            )));
        }
        if let Some(&id) = dispatch.iter().find(|&&id| id as usize >= pool.len()) {
            return Err(corrupt(format!(
                "dispatch references member {id} of a {}-member pool",
                pool.len()
            )));
        }
        Ok(CompiledModel {
            meta: ServeMeta {
                schema: meta.schema,
                group_index: meta.group_index,
                proxy: meta.proxy,
                name: meta.name,
            },
            centroids,
            pool,
            dispatch,
            n_groups,
            threads: 0,
            faults: FaultPlan::default(),
        })
    }

    /// [`Self::load`], gated on the source fingerprint: an artifact
    /// compiled from a different snapshot than `expected` is rejected as
    /// [`FalccError::ArtifactStale`] so the caller can fall back to the
    /// JSON path instead of serving a stale model.
    ///
    /// # Errors
    /// [`FalccError::ArtifactStale`] on fingerprint mismatch, plus
    /// everything [`Self::load`] rejects.
    pub fn load_if_fresh(&self, expected: u64) -> Result<CompiledModel, FalccError> {
        if self.source_fingerprint != expected {
            falcc_telemetry::counters::ARTIFACTS_REJECTED.incr();
            return Err(FalccError::ArtifactStale {
                found: self.source_fingerprint,
                expected,
            });
        }
        self.load()
    }
}

impl CompiledModel {
    /// Serialises the compiled plane into the v3 binary container.
    /// `source_fingerprint` is the FNV-1a-64 hash of the JSON snapshot's
    /// on-disk bytes this plane was compiled from (0 for a free-standing
    /// artifact).
    ///
    /// # Errors
    /// [`FalccError::InvalidConfig`] when a pool member does not support
    /// persistence or the metadata cannot be serialised.
    pub fn to_artifact_bytes(&self, source_fingerprint: u64) -> Result<Vec<u8>, FalccError> {
        let (parts, opaque_specs) = self
            .pool
            .to_parts()
            .map_err(|detail| FalccError::InvalidConfig { detail })?;
        let meta = ArtifactMeta {
            schema: self.meta.schema.clone(),
            group_index: self.meta.group_index.clone(),
            proxy: self.meta.proxy.clone(),
            name: self.meta.name.clone(),
            n_groups: self.n_groups as u32,
            n_cols: self.centroids.n_cols() as u32,
            opaque_specs,
        };
        let meta_json = serde_json::to_string(&meta).map_err(|e| FalccError::InvalidConfig {
            detail: format!("metadata serialisation failed: {e}"),
        })?;
        let bodies: [Vec<u8>; N_SECTIONS] = [
            meta_json.into_bytes(),
            encode_f64(&parts.node_thr),
            encode_u32(&parts.node_feat),
            encode_u32(&parts.node_left),
            encode_f64(&parts.node_proba),
            encode_u32(&parts.footprints),
            encode_u32(&parts.member_recs),
            encode_u32(&parts.member_u32),
            encode_f64(&parts.member_f64),
            encode_f64(self.centroids.data()),
            encode_f64(self.centroids.norms()),
            encode_u32(&self.dispatch),
        ];
        let table_end = HEADER_LEN + N_SECTIONS * ENTRY_LEN;
        let mut out = vec![0u8; table_end];
        for (id, body) in bodies.iter().enumerate() {
            while !out.len().is_multiple_of(8) {
                out.push(0);
            }
            let at = HEADER_LEN + id * ENTRY_LEN;
            let offset = out.len() as u64;
            out[at..at + 4].copy_from_slice(&(id as u32).to_le_bytes());
            out[at + 4..at + 8].copy_from_slice(&kind_of(id).to_le_bytes());
            out[at + 8..at + 16].copy_from_slice(&offset.to_le_bytes());
            out[at + 16..at + 24].copy_from_slice(&(body.len() as u64).to_le_bytes());
            out[at + 24..at + 32].copy_from_slice(&fnv1a64(body).to_le_bytes());
            out.extend_from_slice(body);
        }
        out[..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&(N_SECTIONS as u32).to_le_bytes());
        out[16..24].copy_from_slice(&source_fingerprint.to_le_bytes());
        let checksum = fnv1a64(&out[HEADER_LEN..]);
        out[24..32].copy_from_slice(&checksum.to_le_bytes());
        Ok(out)
    }

    /// Writes the compiled plane to `path` as a binary artifact,
    /// atomically and durably through the shared tmp+fsync+rename layer.
    /// Before publishing, the exact bytes are validated and loaded back
    /// as a round-trip self-check, so a writer bug surfaces at save time
    /// with the model still in memory.
    ///
    /// # Errors
    /// Serialisation, self-check, and I/O failures;
    /// [`FalccError::CrossDeviceRename`] when the temp file and target
    /// sit on different filesystems.
    pub fn save_artifact(
        &self,
        path: impl AsRef<Path>,
        source_fingerprint: u64,
    ) -> Result<(), FalccError> {
        let bytes = self.to_artifact_bytes(source_fingerprint)?;
        CompiledModelBuf::from_bytes(bytes.clone())?.load()?;
        atomic_durable_write(path.as_ref(), &bytes)
    }

    /// Reads, validates, and loads an artifact file in one call.
    ///
    /// # Errors
    /// Everything [`CompiledModelBuf::read`] and
    /// [`CompiledModelBuf::load`] reject.
    pub fn load_artifact(path: impl AsRef<Path>) -> Result<Self, FalccError> {
        CompiledModelBuf::read(path)?.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FalccConfig;
    use crate::framework::FairClassifier;
    use crate::offline::FalccModel;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};

    fn fitted() -> (FalccModel, ThreeWaySplit) {
        let mut dcfg = SyntheticConfig::social(0.3);
        dcfg.n = 800;
        let ds = generate(&dcfg, 31).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 31).unwrap();
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        (model, split)
    }

    #[test]
    fn bytes_round_trip_preserves_every_prediction() {
        let (model, split) = fitted();
        let compiled = model.compile();
        let bytes = compiled.to_artifact_bytes(0xfeed).unwrap();
        let buf = CompiledModelBuf::from_bytes(bytes).unwrap();
        assert_eq!(buf.source_fingerprint(), 0xfeed);
        let loaded = buf.load_if_fresh(0xfeed).unwrap();
        assert_eq!(loaded.name(), compiled.name());
        assert_eq!(loaded.n_models(), compiled.n_models());
        assert_eq!(loaded.n_regions(), compiled.n_regions());
        assert_eq!(loaded.n_nodes(), compiled.n_nodes());
        for i in 0..split.test.len() {
            let row = split.test.row(i);
            assert_eq!(compiled.try_classify(row), loaded.try_classify(row), "row {i}");
        }
        assert_eq!(
            compiled.predict_dataset(&split.test),
            loaded.predict_dataset(&split.test)
        );
        // One buffer serves many replicas.
        let replica = buf.load().unwrap();
        assert_eq!(
            replica.predict_dataset(&split.test),
            loaded.predict_dataset(&split.test)
        );
    }

    #[test]
    fn file_round_trip_is_atomic_and_self_checked() {
        let (model, split) = fitted();
        let compiled = model.compile();
        let path = std::env::temp_dir().join("falcc_artifact_test.falccb");
        compiled.save_artifact(&path, 7).unwrap();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "no temp file left behind");
        let loaded = CompiledModel::load_artifact(&path).unwrap();
        assert_eq!(
            compiled.predict_dataset(&split.test),
            loaded.predict_dataset(&split.test)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_fingerprint_is_a_typed_rejection() {
        let (model, _) = fitted();
        let compiled = model.compile();
        let bytes = compiled.to_artifact_bytes(0xaaaa).unwrap();
        let buf = CompiledModelBuf::from_bytes(bytes).unwrap();
        assert!(matches!(
            buf.load_if_fresh(0xbbbb),
            Err(FalccError::ArtifactStale { found: 0xaaaa, expected: 0xbbbb })
        ));
        // The buffer itself stays usable for the matching fingerprint.
        assert!(buf.load_if_fresh(0xaaaa).is_ok());
    }

    #[test]
    fn version_skew_and_magic_damage_are_typed() {
        let (model, _) = fitted();
        let bytes = model.compile().to_artifact_bytes(0).unwrap();

        let mut skewed = bytes.clone();
        skewed[8] = 99; // version lives outside the file checksum
        assert!(matches!(
            CompiledModelBuf::from_bytes(skewed),
            Err(FalccError::ArtifactVersionSkew { found: 99, expected: ARTIFACT_VERSION })
        ));

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0x01;
        assert!(matches!(
            CompiledModelBuf::from_bytes(bad_magic),
            Err(FalccError::ArtifactCorrupt { .. })
        ));

        let mut flipped_body = bytes;
        let last = flipped_body.len() - 1;
        flipped_body[last] ^= 0x01;
        assert!(matches!(
            CompiledModelBuf::from_bytes(flipped_body),
            Err(FalccError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn misaligned_section_is_rejected_even_with_valid_checksums() {
        let (model, _) = fitted();
        let mut bytes = model.compile().to_artifact_bytes(0).unwrap();
        // Knock section 1's offset off alignment and re-seal both the
        // section checksum and the whole-file checksum, so only the
        // alignment rule stands between the damage and the loader.
        let at = HEADER_LEN + ENTRY_LEN; // section 1's table entry
        let offset = u64le(&bytes, at + 8);
        bytes[at + 8..at + 16].copy_from_slice(&(offset + 1).to_le_bytes());
        let len = u64le(&bytes, at + 16) as usize;
        let body_start = (offset + 1) as usize;
        let reseal = fnv1a64(&bytes[body_start..body_start + len]);
        bytes[at + 24..at + 32].copy_from_slice(&reseal.to_le_bytes());
        let file_checksum = fnv1a64(&bytes[HEADER_LEN..]);
        bytes[24..32].copy_from_slice(&file_checksum.to_le_bytes());
        match CompiledModelBuf::from_bytes(bytes) {
            Err(FalccError::ArtifactCorrupt { detail }) => {
                assert!(detail.contains("misaligned"), "{detail}");
            }
            other => panic!("expected misalignment rejection, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn sibling_path_swaps_the_extension() {
        assert_eq!(
            sibling_artifact_path(Path::new("out/model.json")),
            PathBuf::from("out/model.falccb")
        );
    }
}
