//! FALCC pipeline configuration.

use crate::checkpoint::CheckpointSpec;
use crate::faults::FaultPlan;
use crate::proxy::ProxyStrategy;
use falcc_metrics::{FairnessMetric, LossConfig};
use falcc_models::PoolConfig;

/// How the clustering component chooses its number of local regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterSpec {
    /// Fixed `k`. `FixedK(1)` recovers *global* fairness (paper §3.1).
    FixedK(usize),
    /// LOG-Means automatic estimation (the paper's default).
    LogMeans,
    /// Elbow-method estimation (ablation alternative).
    Elbow,
}

/// Full configuration of the FALCC offline phase.
#[derive(Debug, Clone)]
pub struct FalccConfig {
    /// The Eq. 2 loss used for model assessment (λ and fairness metric).
    pub loss: LossConfig,
    /// Proxy-discrimination mitigation strategy (§3.4).
    pub proxy: ProxyStrategy,
    /// Local-region construction (§3.5).
    pub clustering: ClusterSpec,
    /// Number of nearest neighbours pulled in per missing group during
    /// cluster gap-filling (the paper fixes this to the FALCES `k = 15`).
    pub gap_fill_k: usize,
    /// Diverse-model-training configuration (§3.3).
    pub pool: PoolConfig,
    /// When set, model assessment optimises **individual** fairness
    /// instead of the group metric: the unfairness term of Eq. 2 becomes
    /// `1 − consistency` over each sample's k nearest neighbours *within
    /// its cluster* — the paper's "clusters as substitutes for kNN"
    /// efficiency shortcut (§3.6). The group metric in [`Self::loss`] is
    /// then ignored during assessment (λ still applies).
    pub individual_assessment_k: Option<usize>,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel stages — pool training, per-cluster
    /// assessment, and batched online classification (0 = available
    /// parallelism). Purely a throughput knob: every stage derives its
    /// randomness from item indices and merges results in input order, so
    /// the fitted model and its predictions are bit-identical for every
    /// value. Overrides [`PoolConfig::threads`] during [`fit`].
    ///
    /// [`fit`]: crate::FalccModel::fit
    pub threads: usize,
    /// Graceful-degradation floor: after quarantining failed or unsound
    /// pool members, at least this many must survive or fitting aborts
    /// with [`crate::FalccError::PoolDepleted`]. Must be ≥ 1.
    pub min_pool_size: usize,
    /// Deterministic fault-injection schedule (testing only — the default
    /// empty plan injects nothing). See [`crate::faults`].
    pub faults: FaultPlan,
    /// When set, [`fit`] journals phase-granular checkpoints into the
    /// given directory and — with [`CheckpointSpec::resume`] — picks up
    /// after the last valid checkpoint, producing a model bit-identical
    /// to an uninterrupted run at any thread count. `None` (the default)
    /// disables journaling; like [`Self::threads`] and [`Self::faults`]
    /// it never changes the fitted model, so it is excluded from the
    /// run-config fingerprint. See [`crate::checkpoint`].
    ///
    /// [`fit`]: crate::FalccModel::fit
    pub checkpoint: Option<CheckpointSpec>,
}

impl Default for FalccConfig {
    fn default() -> Self {
        Self {
            loss: LossConfig::balanced(FairnessMetric::DemographicParity),
            proxy: ProxyStrategy::None,
            clustering: ClusterSpec::LogMeans,
            gap_fill_k: 15,
            pool: PoolConfig::default(),
            individual_assessment_k: None,
            seed: 0,
            threads: 0,
            min_pool_size: 1,
            faults: FaultPlan::default(),
            checkpoint: None,
        }
    }
}

impl FalccConfig {
    /// Shrinks the expensive knobs so unit tests and doctests stay fast:
    /// a small fixed cluster count and a 3-model pool.
    pub fn scale_for_tests(&mut self) {
        self.clustering = ClusterSpec::FixedK(4);
        self.pool.pool_size = 3;
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// [`crate::FalccError::InvalidConfig`] on violations.
    pub fn validate(&self) -> Result<(), crate::FalccError> {
        if let ClusterSpec::FixedK(0) = self.clustering {
            return Err(crate::FalccError::InvalidConfig {
                detail: "cluster count must be at least 1".into(),
            });
        }
        if self.gap_fill_k == 0 {
            return Err(crate::FalccError::InvalidConfig {
                detail: "gap_fill_k must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.loss.lambda) {
            return Err(crate::FalccError::InvalidConfig {
                detail: format!("lambda {} outside [0,1]", self.loss.lambda),
            });
        }
        if self.individual_assessment_k == Some(0) {
            return Err(crate::FalccError::InvalidConfig {
                detail: "individual_assessment_k must be at least 1".into(),
            });
        }
        if self.min_pool_size == 0 {
            return Err(crate::FalccError::InvalidConfig {
                detail: "min_pool_size must be at least 1".into(),
            });
        }
        if let Some(ck) = &self.checkpoint {
            if ck.dir.as_os_str().is_empty() {
                return Err(crate::FalccError::InvalidConfig {
                    detail: "checkpoint directory must not be empty".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit mutation reads clearer in tests
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = FalccConfig::default();
        assert_eq!(cfg.loss.lambda, 0.5);
        assert_eq!(cfg.loss.metric, FairnessMetric::DemographicParity);
        assert_eq!(cfg.clustering, ClusterSpec::LogMeans);
        assert_eq!(cfg.gap_fill_k, 15);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FalccConfig::default();
        cfg.clustering = ClusterSpec::FixedK(0);
        assert!(cfg.validate().is_err());

        let mut cfg = FalccConfig::default();
        cfg.gap_fill_k = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = FalccConfig::default();
        cfg.loss.lambda = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = FalccConfig::default();
        cfg.min_pool_size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_injects_no_faults() {
        assert!(FalccConfig::default().faults.is_empty());
        assert_eq!(FalccConfig::default().min_pool_size, 1);
    }

    #[test]
    fn default_has_no_checkpointing_and_empty_dir_is_rejected() {
        assert!(FalccConfig::default().checkpoint.is_none());
        let mut cfg = FalccConfig::default();
        cfg.checkpoint = Some(CheckpointSpec::new(""));
        assert!(cfg.validate().is_err());
        cfg.checkpoint = Some(CheckpointSpec::new("/tmp/ck"));
        assert!(cfg.validate().is_ok());
    }
}
