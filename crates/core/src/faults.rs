//! Deterministic fault injection for the FALCC pipeline.
//!
//! Robustness claims are only testable if failures can be *provoked on
//! demand and reproduced exactly*. A [`FaultPlan`] is a declarative
//! schedule of faults, each keyed by a **site** (which pipeline stage) and
//! an **ordinal** (which item at that stage — pool member index, tuning
//! grid position, cluster index, batch row index). Because every parallel
//! stage in this workspace processes items by index with an ordered merge
//! (see `falcc_models::parallel_map`), keying injections by ordinal makes
//! the schedule — and therefore the degraded output — **bit-identical for
//! every thread count**. The determinism suite exploits exactly that: the
//! same plan at 1, 2, and 8 threads must produce the same degraded model.
//!
//! The plan is plain data: arming a fault never touches a clock or a
//! global RNG, and an empty plan (the default, used by every production
//! path) adds one `BTreeSet` lookup per guarded item. Each *firing* is
//! counted on the `faults.injected` telemetry counter so a test can assert
//! the schedule actually executed.
//!
//! ```
//! use falcc::faults::{FaultPlan, FaultSite};
//!
//! let mut plan = FaultPlan::default();
//! plan.fail_pool_member(2);
//! plan.empty_cluster(0);
//! assert!(plan.fires(FaultSite::PoolMember, 2));
//! assert!(!plan.fires(FaultSite::PoolMember, 3));
//! ```

use std::collections::BTreeSet;

/// A pipeline stage where a fault can be injected. The meaning of the
/// ordinal differs per site — always an *input-order index*, never a
/// scheduling-order one, so injection is thread-count independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Pool-member training failure. Ordinal: the member's index in the
    /// trained pool. The member is quarantined before assessment.
    PoolMember,
    /// Tuning-trial failure. Ordinal: the candidate's position in the
    /// tuning grid. The trial is skipped, as if its fit had failed.
    TuningTrial,
    /// Degenerate cluster: the region's assessment set is emptied *after*
    /// gap filling. Ordinal: the cluster index.
    ClusterEmpty,
    /// Poisoned online sample: the batch row behaves as if it carried a
    /// non-finite feature. Ordinal: the row index within the batch.
    NonFiniteRow,
    /// Transient checkpoint-journal I/O failure: the write attempt fails
    /// once and is retried by the bounded retry layer. Ordinal: the
    /// journal's global I/O-attempt counter (arm consecutive ordinals to
    /// exhaust the retry budget).
    TransientIo,
}

/// Where within one checkpoint commit the process is hard-killed by an
/// armed [`CrashPoint`]. The four phases cover every distinct on-disk
/// state a crash can leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashPhase {
    /// Before anything is written: the commit left no trace.
    BeforeWrite,
    /// After the record file is durable but before its manifest entry —
    /// an orphaned record the manifest never references.
    AfterRecord,
    /// Mid-manifest-append: half the entry line reached the disk (a torn
    /// line the resume scan must detect and drop).
    MidManifest,
    /// After the commit completed (record and manifest entry durable).
    AfterCommit,
}

impl CrashPhase {
    /// Every phase, in commit order.
    pub const ALL: [Self; 4] =
        [Self::BeforeWrite, Self::AfterRecord, Self::MidManifest, Self::AfterCommit];

    /// The kebab-case name used by `falcc fit --crash-at`.
    pub fn name(self) -> &'static str {
        match self {
            Self::BeforeWrite => "before-write",
            Self::AfterRecord => "after-record",
            Self::MidManifest => "mid-manifest",
            Self::AfterCommit => "after-commit",
        }
    }

    /// Parses a [`Self::name`] string.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// A crash site for the chaos harness: the checkpoint journal aborts the
/// process (simulating `kill -9`) at `phase` of its `ordinal`-th commit.
/// Commits are counted in pipeline order — the same order at every thread
/// count — so a crash point pins an exact on-disk journal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which commit (0-based, in pipeline commit order).
    pub ordinal: u64,
    /// Where within that commit.
    pub phase: CrashPhase,
}

impl CrashPoint {
    /// The full kill-point catalog for a run known to perform `commits`
    /// checkpoint commits: every commit ordinal crossed with every
    /// [`CrashPhase`]. The chaos harness sweeps this exhaustively.
    pub fn catalog(commits: u64) -> Vec<Self> {
        (0..commits)
            .flat_map(|ordinal| CrashPhase::ALL.map(|phase| Self { ordinal, phase }))
            .collect()
    }
}

/// A deterministic schedule of injected faults. See the module docs.
///
/// The default (empty) plan injects nothing and is what every production
/// code path carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    armed: BTreeSet<(FaultSite, u64)>,
    /// `(cluster, group)` pairs whose validation rows are dropped from the
    /// region's assessment set after gap filling.
    group_drops: BTreeSet<(u64, u16)>,
    /// Byte offset to XOR-flip in a serialised snapshot.
    snapshot_flip: Option<usize>,
    /// Length to truncate a serialised snapshot to.
    snapshot_truncate: Option<usize>,
    /// Hard-kill site for the checkpoint chaos harness.
    crash: Option<CrashPoint>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
            && self.group_drops.is_empty()
            && self.snapshot_flip.is_none()
            && self.snapshot_truncate.is_none()
            && self.crash.is_none()
    }

    /// Arms a training failure for pool member `index`.
    pub fn fail_pool_member(&mut self, index: u64) -> &mut Self {
        self.armed.insert((FaultSite::PoolMember, index));
        self
    }

    /// Arms a failure of tuning-grid candidate `ordinal`.
    pub fn fail_tuning_trial(&mut self, ordinal: u64) -> &mut Self {
        self.armed.insert((FaultSite::TuningTrial, ordinal));
        self
    }

    /// Arms emptying of cluster `cluster`'s assessment set.
    pub fn empty_cluster(&mut self, cluster: u64) -> &mut Self {
        self.armed.insert((FaultSite::ClusterEmpty, cluster));
        self
    }

    /// Arms removal of group `group`'s rows from region `cluster`'s
    /// assessment set (a *missing-group region*).
    pub fn drop_group_in_region(&mut self, cluster: u64, group: u16) -> &mut Self {
        self.group_drops.insert((cluster, group));
        self
    }

    /// Arms poisoning of batch row `row` in the online phase.
    pub fn poison_row(&mut self, row: u64) -> &mut Self {
        self.armed.insert((FaultSite::NonFiniteRow, row));
        self
    }

    /// Arms an XOR bit-flip of snapshot byte `offset` (modulo length) for
    /// [`Self::mangle_snapshot`].
    pub fn flip_snapshot_byte(&mut self, offset: usize) -> &mut Self {
        self.snapshot_flip = Some(offset);
        self
    }

    /// Arms truncation of the snapshot to `len` bytes for
    /// [`Self::mangle_snapshot`].
    pub fn truncate_snapshot(&mut self, len: usize) -> &mut Self {
        self.snapshot_truncate = Some(len);
        self
    }

    /// Arms a transient failure of checkpoint-journal I/O attempt
    /// `ordinal` (the journal's global attempt counter). The bounded
    /// retry layer absorbs isolated failures; arming enough consecutive
    /// ordinals exhausts the budget into
    /// [`crate::FalccError::RetriesExhausted`].
    pub fn fail_io_attempt(&mut self, ordinal: u64) -> &mut Self {
        self.armed.insert((FaultSite::TransientIo, ordinal));
        self
    }

    /// Arms a hard process kill at `phase` of checkpoint commit
    /// `ordinal` — the chaos harness's kill switch.
    pub fn crash_at(&mut self, ordinal: u64, phase: CrashPhase) -> &mut Self {
        self.crash = Some(CrashPoint { ordinal, phase });
        self
    }

    /// The armed crash point, if any.
    pub fn crash_point(&self) -> Option<CrashPoint> {
        self.crash
    }

    /// A pseudo-random plan derived entirely from `seed`: arms one fault
    /// per site with a SplitMix64-derived ordinal below the given bounds.
    /// Two calls with the same seed arm the identical schedule — handy for
    /// fuzzing degraded pipelines reproducibly.
    pub fn seeded(seed: u64, pool_size: u64, clusters: u64, batch_rows: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: the canonical seed expander, no dependencies.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::default();
        if pool_size > 0 {
            plan.fail_pool_member(next() % pool_size);
        }
        if clusters > 0 {
            plan.empty_cluster(next() % clusters);
        }
        if batch_rows > 0 {
            plan.poison_row(next() % batch_rows);
        }
        plan
    }

    /// Whether the fault armed at `(site, ordinal)` fires. Each firing is
    /// counted on the `faults.injected` telemetry counter.
    pub fn fires(&self, site: FaultSite, ordinal: u64) -> bool {
        let hit = self.armed.contains(&(site, ordinal));
        if hit {
            falcc_telemetry::counters::FAULTS_INJECTED.incr();
            if falcc_telemetry::enabled() {
                falcc_telemetry::event(
                    "faults.fired",
                    format!("{site:?} ordinal {ordinal}"),
                );
            }
        }
        hit
    }

    /// The groups whose rows are dropped from region `cluster`, in
    /// ascending order. Each returned drop counts as one injected fault.
    pub fn dropped_groups(&self, cluster: u64) -> Vec<u16> {
        let dropped: Vec<u16> = self
            .group_drops
            .range((cluster, u16::MIN)..=(cluster, u16::MAX))
            .map(|&(_, g)| g)
            .collect();
        if !dropped.is_empty() {
            falcc_telemetry::counters::FAULTS_INJECTED.add(dropped.len() as u64);
        }
        dropped
    }

    /// Applies the armed snapshot corruptions (bit flip, truncation) to a
    /// serialised snapshot in place. No-op when neither is armed.
    pub fn mangle_snapshot(&self, bytes: &mut Vec<u8>) {
        if let Some(off) = self.snapshot_flip {
            if flip_byte(bytes, off) {
                falcc_telemetry::counters::FAULTS_INJECTED.incr();
            }
        }
        if let Some(len) = self.snapshot_truncate {
            if truncate_bytes(bytes, len) {
                falcc_telemetry::counters::FAULTS_INJECTED.incr();
            }
        }
    }
}

/// XOR-flips one bit of byte `offset % len`, returning whether anything
/// changed. The shared corruption primitive behind [`FaultPlan::
/// mangle_snapshot`] and the snapshot/journal corruption matrices — one
/// definition so every suite damages bytes the same way.
pub fn flip_byte(bytes: &mut [u8], offset: usize) -> bool {
    if bytes.is_empty() {
        return false;
    }
    let i = offset % bytes.len();
    bytes[i] ^= 0x01;
    true
}

/// Truncates `bytes` to `len`, returning whether anything was cut. The
/// counterpart of [`flip_byte`] for torn-write corruption.
pub fn truncate_bytes(bytes: &mut Vec<u8>, len: usize) -> bool {
    if len >= bytes.len() {
        return false;
    }
    bytes.truncate(len);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_never_fires() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for site in [
            FaultSite::PoolMember,
            FaultSite::TuningTrial,
            FaultSite::ClusterEmpty,
            FaultSite::NonFiniteRow,
            FaultSite::TransientIo,
        ] {
            for ordinal in 0..8 {
                assert!(!plan.fires(site, ordinal));
            }
        }
        assert!(plan.dropped_groups(0).is_empty());
        let mut bytes = b"snapshot".to_vec();
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes, b"snapshot");
    }

    #[test]
    fn armed_faults_fire_exactly_where_armed() {
        let mut plan = FaultPlan::default();
        plan.fail_pool_member(1).fail_tuning_trial(4).empty_cluster(2).poison_row(7);
        assert!(!plan.is_empty());
        assert!(plan.fires(FaultSite::PoolMember, 1));
        assert!(!plan.fires(FaultSite::PoolMember, 2));
        assert!(plan.fires(FaultSite::TuningTrial, 4));
        assert!(plan.fires(FaultSite::ClusterEmpty, 2));
        assert!(!plan.fires(FaultSite::ClusterEmpty, 1));
        assert!(plan.fires(FaultSite::NonFiniteRow, 7));
    }

    #[test]
    fn group_drops_are_per_region() {
        let mut plan = FaultPlan::default();
        plan.drop_group_in_region(0, 1).drop_group_in_region(2, 0).drop_group_in_region(2, 1);
        assert_eq!(plan.dropped_groups(0), vec![1]);
        assert_eq!(plan.dropped_groups(1), Vec::<u16>::new());
        assert_eq!(plan.dropped_groups(2), vec![0, 1]);
    }

    #[test]
    fn snapshot_mangling_flips_and_truncates() {
        let mut plan = FaultPlan::default();
        plan.flip_snapshot_byte(3);
        let mut bytes = vec![0u8; 8];
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes[3], 1);

        let mut plan = FaultPlan::default();
        plan.truncate_snapshot(5);
        let mut bytes = vec![7u8; 8];
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes.len(), 5);
        // Truncation longer than the buffer is a no-op.
        let mut plan = FaultPlan::default();
        plan.truncate_snapshot(100);
        let mut bytes = vec![7u8; 8];
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn transient_io_and_crash_points_arm_like_other_sites() {
        let mut plan = FaultPlan::default();
        plan.fail_io_attempt(3).crash_at(2, CrashPhase::AfterRecord);
        assert!(!plan.is_empty());
        assert!(plan.fires(FaultSite::TransientIo, 3));
        assert!(!plan.fires(FaultSite::TransientIo, 4));
        assert_eq!(
            plan.crash_point(),
            Some(CrashPoint { ordinal: 2, phase: CrashPhase::AfterRecord })
        );
        // A crash point alone makes the plan non-empty.
        let mut plan = FaultPlan::default();
        plan.crash_at(0, CrashPhase::BeforeWrite);
        assert!(!plan.is_empty());
    }

    #[test]
    fn crash_phase_names_round_trip_and_catalog_is_complete() {
        for phase in CrashPhase::ALL {
            assert_eq!(CrashPhase::parse(phase.name()), Some(phase));
        }
        assert_eq!(CrashPhase::parse("nonsense"), None);
        let catalog = CrashPoint::catalog(3);
        assert_eq!(catalog.len(), 12, "3 commits x 4 phases");
        assert_eq!(catalog[0], CrashPoint { ordinal: 0, phase: CrashPhase::BeforeWrite });
        assert_eq!(catalog[11], CrashPoint { ordinal: 2, phase: CrashPhase::AfterCommit });
    }

    #[test]
    fn corruption_primitives_report_effect() {
        let mut bytes = vec![0u8; 4];
        assert!(flip_byte(&mut bytes, 6));
        assert_eq!(bytes, vec![0, 0, 1, 0]);
        assert!(!flip_byte(&mut [], 0));
        let mut bytes = vec![7u8; 4];
        assert!(truncate_bytes(&mut bytes, 2));
        assert_eq!(bytes.len(), 2);
        assert!(!truncate_bytes(&mut bytes, 2));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 5, 4, 100);
        let b = FaultPlan::seeded(42, 5, 4, 100);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(43, 5, 4, 100);
        // Different seeds *may* collide per site, but the full schedule
        // almost surely differs; at minimum it stays within bounds.
        for ordinal in 5..10 {
            assert!(!c.fires(FaultSite::PoolMember, ordinal));
        }
        assert_eq!(FaultPlan::seeded(1, 0, 0, 0), FaultPlan::default());
    }
}
