//! Deterministic fault injection for the FALCC pipeline.
//!
//! Robustness claims are only testable if failures can be *provoked on
//! demand and reproduced exactly*. A [`FaultPlan`] is a declarative
//! schedule of faults, each keyed by a **site** (which pipeline stage) and
//! an **ordinal** (which item at that stage — pool member index, tuning
//! grid position, cluster index, batch row index). Because every parallel
//! stage in this workspace processes items by index with an ordered merge
//! (see `falcc_models::parallel_map`), keying injections by ordinal makes
//! the schedule — and therefore the degraded output — **bit-identical for
//! every thread count**. The determinism suite exploits exactly that: the
//! same plan at 1, 2, and 8 threads must produce the same degraded model.
//!
//! The plan is plain data: arming a fault never touches a clock or a
//! global RNG, and an empty plan (the default, used by every production
//! path) adds one `BTreeSet` lookup per guarded item. Each *firing* is
//! counted on the `faults.injected` telemetry counter so a test can assert
//! the schedule actually executed.
//!
//! ```
//! use falcc::faults::{FaultPlan, FaultSite};
//!
//! let mut plan = FaultPlan::default();
//! plan.fail_pool_member(2);
//! plan.empty_cluster(0);
//! assert!(plan.fires(FaultSite::PoolMember, 2));
//! assert!(!plan.fires(FaultSite::PoolMember, 3));
//! ```

use std::collections::BTreeSet;

/// A pipeline stage where a fault can be injected. The meaning of the
/// ordinal differs per site — always an *input-order index*, never a
/// scheduling-order one, so injection is thread-count independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Pool-member training failure. Ordinal: the member's index in the
    /// trained pool. The member is quarantined before assessment.
    PoolMember,
    /// Tuning-trial failure. Ordinal: the candidate's position in the
    /// tuning grid. The trial is skipped, as if its fit had failed.
    TuningTrial,
    /// Degenerate cluster: the region's assessment set is emptied *after*
    /// gap filling. Ordinal: the cluster index.
    ClusterEmpty,
    /// Poisoned online sample: the batch row behaves as if it carried a
    /// non-finite feature. Ordinal: the row index within the batch.
    NonFiniteRow,
}

/// A deterministic schedule of injected faults. See the module docs.
///
/// The default (empty) plan injects nothing and is what every production
/// code path carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    armed: BTreeSet<(FaultSite, u64)>,
    /// `(cluster, group)` pairs whose validation rows are dropped from the
    /// region's assessment set after gap filling.
    group_drops: BTreeSet<(u64, u16)>,
    /// Byte offset to XOR-flip in a serialised snapshot.
    snapshot_flip: Option<usize>,
    /// Length to truncate a serialised snapshot to.
    snapshot_truncate: Option<usize>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
            && self.group_drops.is_empty()
            && self.snapshot_flip.is_none()
            && self.snapshot_truncate.is_none()
    }

    /// Arms a training failure for pool member `index`.
    pub fn fail_pool_member(&mut self, index: u64) -> &mut Self {
        self.armed.insert((FaultSite::PoolMember, index));
        self
    }

    /// Arms a failure of tuning-grid candidate `ordinal`.
    pub fn fail_tuning_trial(&mut self, ordinal: u64) -> &mut Self {
        self.armed.insert((FaultSite::TuningTrial, ordinal));
        self
    }

    /// Arms emptying of cluster `cluster`'s assessment set.
    pub fn empty_cluster(&mut self, cluster: u64) -> &mut Self {
        self.armed.insert((FaultSite::ClusterEmpty, cluster));
        self
    }

    /// Arms removal of group `group`'s rows from region `cluster`'s
    /// assessment set (a *missing-group region*).
    pub fn drop_group_in_region(&mut self, cluster: u64, group: u16) -> &mut Self {
        self.group_drops.insert((cluster, group));
        self
    }

    /// Arms poisoning of batch row `row` in the online phase.
    pub fn poison_row(&mut self, row: u64) -> &mut Self {
        self.armed.insert((FaultSite::NonFiniteRow, row));
        self
    }

    /// Arms an XOR bit-flip of snapshot byte `offset` (modulo length) for
    /// [`Self::mangle_snapshot`].
    pub fn flip_snapshot_byte(&mut self, offset: usize) -> &mut Self {
        self.snapshot_flip = Some(offset);
        self
    }

    /// Arms truncation of the snapshot to `len` bytes for
    /// [`Self::mangle_snapshot`].
    pub fn truncate_snapshot(&mut self, len: usize) -> &mut Self {
        self.snapshot_truncate = Some(len);
        self
    }

    /// A pseudo-random plan derived entirely from `seed`: arms one fault
    /// per site with a SplitMix64-derived ordinal below the given bounds.
    /// Two calls with the same seed arm the identical schedule — handy for
    /// fuzzing degraded pipelines reproducibly.
    pub fn seeded(seed: u64, pool_size: u64, clusters: u64, batch_rows: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: the canonical seed expander, no dependencies.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::default();
        if pool_size > 0 {
            plan.fail_pool_member(next() % pool_size);
        }
        if clusters > 0 {
            plan.empty_cluster(next() % clusters);
        }
        if batch_rows > 0 {
            plan.poison_row(next() % batch_rows);
        }
        plan
    }

    /// Whether the fault armed at `(site, ordinal)` fires. Each firing is
    /// counted on the `faults.injected` telemetry counter.
    pub fn fires(&self, site: FaultSite, ordinal: u64) -> bool {
        let hit = self.armed.contains(&(site, ordinal));
        if hit {
            falcc_telemetry::counters::FAULTS_INJECTED.incr();
            if falcc_telemetry::enabled() {
                falcc_telemetry::event(
                    "faults.fired",
                    format!("{site:?} ordinal {ordinal}"),
                );
            }
        }
        hit
    }

    /// The groups whose rows are dropped from region `cluster`, in
    /// ascending order. Each returned drop counts as one injected fault.
    pub fn dropped_groups(&self, cluster: u64) -> Vec<u16> {
        let dropped: Vec<u16> = self
            .group_drops
            .range((cluster, u16::MIN)..=(cluster, u16::MAX))
            .map(|&(_, g)| g)
            .collect();
        if !dropped.is_empty() {
            falcc_telemetry::counters::FAULTS_INJECTED.add(dropped.len() as u64);
        }
        dropped
    }

    /// Applies the armed snapshot corruptions (bit flip, truncation) to a
    /// serialised snapshot in place. No-op when neither is armed.
    pub fn mangle_snapshot(&self, bytes: &mut Vec<u8>) {
        if let Some(off) = self.snapshot_flip {
            if !bytes.is_empty() {
                let i = off % bytes.len();
                bytes[i] ^= 0x01;
                falcc_telemetry::counters::FAULTS_INJECTED.incr();
            }
        }
        if let Some(len) = self.snapshot_truncate {
            if len < bytes.len() {
                bytes.truncate(len);
                falcc_telemetry::counters::FAULTS_INJECTED.incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_never_fires() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for site in [
            FaultSite::PoolMember,
            FaultSite::TuningTrial,
            FaultSite::ClusterEmpty,
            FaultSite::NonFiniteRow,
        ] {
            for ordinal in 0..8 {
                assert!(!plan.fires(site, ordinal));
            }
        }
        assert!(plan.dropped_groups(0).is_empty());
        let mut bytes = b"snapshot".to_vec();
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes, b"snapshot");
    }

    #[test]
    fn armed_faults_fire_exactly_where_armed() {
        let mut plan = FaultPlan::default();
        plan.fail_pool_member(1).fail_tuning_trial(4).empty_cluster(2).poison_row(7);
        assert!(!plan.is_empty());
        assert!(plan.fires(FaultSite::PoolMember, 1));
        assert!(!plan.fires(FaultSite::PoolMember, 2));
        assert!(plan.fires(FaultSite::TuningTrial, 4));
        assert!(plan.fires(FaultSite::ClusterEmpty, 2));
        assert!(!plan.fires(FaultSite::ClusterEmpty, 1));
        assert!(plan.fires(FaultSite::NonFiniteRow, 7));
    }

    #[test]
    fn group_drops_are_per_region() {
        let mut plan = FaultPlan::default();
        plan.drop_group_in_region(0, 1).drop_group_in_region(2, 0).drop_group_in_region(2, 1);
        assert_eq!(plan.dropped_groups(0), vec![1]);
        assert_eq!(plan.dropped_groups(1), Vec::<u16>::new());
        assert_eq!(plan.dropped_groups(2), vec![0, 1]);
    }

    #[test]
    fn snapshot_mangling_flips_and_truncates() {
        let mut plan = FaultPlan::default();
        plan.flip_snapshot_byte(3);
        let mut bytes = vec![0u8; 8];
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes[3], 1);

        let mut plan = FaultPlan::default();
        plan.truncate_snapshot(5);
        let mut bytes = vec![7u8; 8];
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes.len(), 5);
        // Truncation longer than the buffer is a no-op.
        let mut plan = FaultPlan::default();
        plan.truncate_snapshot(100);
        let mut bytes = vec![7u8; 8];
        plan.mangle_snapshot(&mut bytes);
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 5, 4, 100);
        let b = FaultPlan::seeded(42, 5, 4, 100);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(43, 5, 4, 100);
        // Different seeds *may* collide per site, but the full schedule
        // almost surely differs; at minimum it stays within bounds.
        for ordinal in 5..10 {
            assert!(!c.fires(FaultSite::PoolMember, ordinal));
        }
        assert_eq!(FaultPlan::seeded(1, 0, 0, 0), FaultPlan::default());
    }
}
