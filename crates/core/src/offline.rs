//! The FALCC offline phase: proxy mitigation → clustering → gap filling →
//! model assessment (paper §3.3–§3.6).

use crate::config::{ClusterSpec, FalccConfig};
use crate::error::FalccError;
use crate::proxy::ProxyOutcome;
use falcc_clustering::{elbow_k, log_means, KEstimateConfig, KdTree, KMeans, KMeansModel};
use falcc_dataset::{Dataset, GroupId};
use falcc_metrics::LossConfig;
use falcc_models::{enumerate_combinations, parallel_map, predict_dataset, ModelPool};

/// A fitted FALCC model: everything the online phase needs.
///
/// * the trained, diverse model pool `M`;
/// * the cluster centroids (in the proxy-mitigated projection space);
/// * the per-cluster best model combination `MC` (one pool index per
///   sensitive group);
/// * the proxy outcome so new samples are projected identically.
pub struct FalccModel {
    pub(crate) schema: falcc_dataset::Schema,
    pub(crate) pool: ModelPool,
    pub(crate) kmeans: KMeansModel,
    /// `combos[cluster][group.index()]` → pool model index.
    pub(crate) combos: Vec<Vec<usize>>,
    pub(crate) proxy: ProxyOutcome,
    pub(crate) group_index: falcc_dataset::GroupIndex,
    pub(crate) loss: LossConfig,
    pub(crate) name: String,
    /// Worker threads for batched online classification (0 = available
    /// parallelism). Carried over from [`FalccConfig::threads`] at fit
    /// time; a throughput knob only — predictions are identical for every
    /// value.
    pub(crate) threads: usize,
    /// Euclidean norm of each centroid, cached once per fitted model for
    /// the online nearest-centroid prune. Derived state — recomputed on
    /// restore, never serialised.
    pub(crate) centroid_norms: Vec<f64>,
}

impl FalccModel {
    /// Runs the full offline phase: diverse model training on `train`,
    /// then clustering + assessment on `validation`.
    ///
    /// # Errors
    /// Propagates configuration validation, dataset errors, and coverage
    /// failures ([`FalccError::GroupAbsent`],
    /// [`FalccError::NoApplicableModel`]).
    pub fn fit(
        train: &Dataset,
        validation: &Dataset,
        config: &FalccConfig,
    ) -> Result<Self, FalccError> {
        config.validate()?;
        let _sp = falcc_telemetry::span("offline.fit");
        let mut pool_cfg = config.pool;
        pool_cfg.seed ^= config.seed;
        pool_cfg.threads = config.threads;
        let pool = {
            let _pool_sp = falcc_telemetry::span("offline.pool_training");
            ModelPool::train_diverse(train, validation, &pool_cfg)
        };
        Self::fit_with_pool(validation, pool, config)
    }

    /// Runs the offline phase with an externally provided model pool —
    /// the `FALCC*` configuration of the paper, which plugs in fair
    /// classifiers (LFR, Fair-SMOTE, FaX) as pool members.
    ///
    /// # Errors
    /// Same conditions as [`Self::fit`].
    pub fn fit_with_pool(
        validation: &Dataset,
        pool: ModelPool,
        config: &FalccConfig,
    ) -> Result<Self, FalccError> {
        config.validate()?;
        if pool.is_empty() {
            return Err(FalccError::NoApplicableModel { group: 0 });
        }
        let group_index = validation.group_index().clone();
        let n_groups = group_index.len();

        // Every group must appear in the validation data — otherwise even
        // gap filling has nothing to pull from.
        let counts = validation.group_counts();
        if let Some(g) = counts.iter().position(|&c| c == 0) {
            return Err(FalccError::GroupAbsent { group: g });
        }

        // §3.4 proxy mitigation → attribute selection/weights for
        // clustering.
        let proxy = {
            let _proxy_sp = falcc_telemetry::span("offline.proxy");
            config.proxy.apply(validation)
        };

        // §3.5 clustering of the projected validation set.
        let projected = {
            let _proj_sp = falcc_telemetry::span("offline.projection");
            validation.project(&proxy.attrs, proxy.weights.as_deref())
        };
        let k = {
            let _k_sp = falcc_telemetry::span("offline.k_estimation");
            match config.clustering {
                ClusterSpec::FixedK(k) => k,
                ClusterSpec::LogMeans => {
                    let est = KEstimateConfig::for_rows(projected.n_rows, config.seed);
                    log_means(&projected, &est)
                }
                ClusterSpec::Elbow => {
                    let est = KEstimateConfig::for_rows(projected.n_rows, config.seed);
                    elbow_k(&projected, &est)
                }
            }
        };
        let kmeans = {
            let _cluster_sp = falcc_telemetry::span_labeled("offline.clustering", format!("k={k}"));
            KMeans::new(k, config.seed).fit(&projected)
        };
        falcc_telemetry::gauges::OFFLINE_CLUSTERS.set(kmeans.k() as u64);
        falcc_telemetry::gauges::OFFLINE_POOL_SIZE.set(pool.len() as u64);

        // Gap filling (§3.5): make sure every cluster's assessment set has
        // members of every group, pulling in the nearest representatives.
        let (tree, assessment_sets) = {
            let _gap_sp = falcc_telemetry::span("offline.gap_fill");
            let tree = KdTree::build(projected);
            let sets = gap_fill(&kmeans, &tree, validation, n_groups, config.gap_fill_k);
            (tree, sets)
        };

        // §3.3 candidate combinations; §3.6 assessment.
        let candidates = enumerate_combinations(&pool, n_groups);
        if candidates.is_empty() {
            let uncovered = (0..n_groups)
                .find(|&g| pool.applicable(GroupId(g as u16)).is_empty())
                .unwrap_or(0);
            return Err(FalccError::NoApplicableModel { group: uncovered });
        }

        falcc_telemetry::gauges::OFFLINE_COMBINATIONS.set(candidates.len() as u64);

        // Precompute every pool model's predictions on the validation set
        // once — assessment then only gathers. Models predict
        // independently, so this fans out across threads.
        let preds: Vec<Vec<u8>> = {
            let _preds_sp = falcc_telemetry::span("offline.pool_predictions");
            parallel_map(&pool.models, config.threads, |_, m| {
                predict_dataset(m.model.as_ref(), validation)
            })
        };

        // Within a numerical tolerance of the best loss, prefer the
        // combination using the *fewest distinct models*: near-ties are
        // common on small clusters, and gratuitous per-group model
        // switching hurts individual consistency without buying fairness.
        const TIE_TOLERANCE: f64 = 1e-3;
        let distinct_models = |combo: &[usize]| -> usize {
            let mut sorted = combo.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len()
        };
        // Clusters are assessed independently (shared read-only inputs,
        // no randomness), so the per-cluster loop fans out across threads;
        // the ordered merge keeps `combos[c]` aligned with cluster `c`.
        // Worker spans parent under the assessment span by explicit id
        // with the cluster index as ordinal (deterministic tree for every
        // thread count).
        let assess_sp = falcc_telemetry::span("offline.assessment");
        let assess_sp_id = assess_sp.id();
        let combos = parallel_map(&assessment_sets, config.threads, |c, members| {
            let _w = falcc_telemetry::span_under(assess_sp_id, "offline.assess_cluster", c as u64);
            let y: Vec<u8> = members.iter().map(|&i| validation.label(i)).collect();
            let g: Vec<GroupId> = members.iter().map(|&i| validation.group(i)).collect();
            // Individual-fairness mode (§3.6): each member's k nearest
            // neighbours *within this cluster* (local indices into
            // `members`), found via the same kd-tree that served gap
            // filling — the paper's "clusters as substitutes for kNN".
            let neighbors: Option<Vec<Vec<usize>>> =
                config.individual_assessment_k.map(|k| {
                    let local: std::collections::HashMap<usize, usize> = members
                        .iter()
                        .enumerate()
                        .map(|(pos, &i)| (i, pos))
                        .collect();
                    members
                        .iter()
                        .map(|&i| {
                            tree.nearest_filtered(tree.point(i), k + 1, |j| {
                                j != i && local.contains_key(&j)
                            })
                            .into_iter()
                            .take(k)
                            .map(|(j, _)| local[&j])
                            .collect()
                        })
                        .collect()
                });
            let assess = |z: &[u8]| -> f64 {
                match &neighbors {
                    None => config.loss.evaluate(&y, z, &g, n_groups),
                    Some(nbrs) => {
                        let lambda = config.loss.lambda;
                        let inacc = falcc_metrics::inaccuracy(&y, z);
                        let inconsistency =
                            1.0 - falcc_metrics::consistency_with_neighbors(z, nbrs);
                        lambda * inacc + (1.0 - lambda) * inconsistency
                    }
                }
            };
            let mut scored: Vec<(f64, usize)> = candidates
                .iter()
                .enumerate()
                .map(|(ci, combo)| {
                    let z: Vec<u8> = members
                        .iter()
                        .zip(&g)
                        .map(|(&i, gi)| preds[combo[gi.index()]][i])
                        .collect();
                    (assess(&z), ci)
                })
                .collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite losses"));
            let best_loss = scored[0].0;
            let chosen = scored
                .iter()
                .take_while(|&&(l, _)| l <= best_loss + TIE_TOLERANCE)
                .min_by_key(|&&(_, ci)| distinct_models(&candidates[ci]))
                .expect("candidates are non-empty")
                .1;
            candidates[chosen].clone()
        });
        drop(assess_sp);

        let centroid_norms = kmeans.centroid_norms();
        Ok(Self {
            schema: validation.schema().clone(),
            pool,
            kmeans,
            combos,
            proxy,
            group_index,
            loss: config.loss,
            name: "FALCC".to_string(),
            threads: config.threads,
            centroid_norms,
        })
    }

    /// Number of local regions (clusters).
    pub fn n_regions(&self) -> usize {
        self.kmeans.k()
    }

    /// The cluster centroids, in the proxy-mitigated projection space
    /// (one per region, aligned with [`Self::combo`] indices).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.kmeans.centroids
    }

    /// The trained model pool.
    pub fn pool(&self) -> &ModelPool {
        &self.pool
    }

    /// The model combination for cluster `c` (pool indices per group).
    pub fn combo(&self, c: usize) -> &[usize] {
        &self.combos[c]
    }

    /// The proxy-mitigation outcome applied before clustering.
    pub fn proxy_outcome(&self) -> &ProxyOutcome {
        &self.proxy
    }

    /// The loss configuration used during assessment.
    pub fn loss_config(&self) -> LossConfig {
        self.loss
    }

    /// Overrides the reported algorithm name (used by the harness to
    /// distinguish FALCC from FALCC*).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Worker threads the batched online phase uses (0 = available
    /// parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the worker-thread count for batched classification
    /// (0 = available parallelism). A throughput knob only: predictions
    /// are bit-identical for every value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    pub(crate) fn kmeans(&self) -> &KMeansModel {
        &self.kmeans
    }

    pub(crate) fn centroid_norms(&self) -> &[f64] {
        &self.centroid_norms
    }

    pub(crate) fn group_index(&self) -> &falcc_dataset::GroupIndex {
        &self.group_index
    }

    /// The schema of the data the model was fitted on — used to load
    /// compatible CSV files for prediction.
    pub fn schema(&self) -> &falcc_dataset::Schema {
        &self.schema
    }

    pub(crate) fn name_str(&self) -> &str {
        &self.name
    }
}

/// Gap filling (§3.5): each cluster's member list, extended so every
/// sensitive group is represented — clusters missing a group pull in that
/// group's `gap_fill_k` nearest validation rows (by centroid distance).
fn gap_fill(
    kmeans: &KMeansModel,
    tree: &KdTree,
    validation: &Dataset,
    n_groups: usize,
    gap_fill_k: usize,
) -> Vec<Vec<usize>> {
    let mut assessment_sets = kmeans.cluster_members();
    for (c, members) in assessment_sets.iter_mut().enumerate() {
        let mut present = vec![false; n_groups];
        for &i in members.iter() {
            present[validation.group(i).index()] = true;
        }
        for (g, &has_members) in present.iter().enumerate() {
            if has_members {
                continue;
            }
            let gid = GroupId(g as u16);
            let fill = tree.nearest_filtered(&kmeans.centroids[c], gap_fill_k, |i| {
                validation.group(i) == gid
            });
            members.extend(fill.iter().map(|&(i, _)| i));
        }
    }
    assessment_sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FalccConfig;
    use crate::proxy::ProxyStrategy;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};

    fn quick_split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    fn quick_config() -> FalccConfig {
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        cfg
    }

    #[test]
    fn fit_produces_combo_per_cluster() {
        let split = quick_split(800, 1);
        let model = FalccModel::fit(&split.train, &split.validation, &quick_config()).unwrap();
        assert_eq!(model.n_regions(), 4);
        for c in 0..model.n_regions() {
            let combo = model.combo(c);
            assert_eq!(combo.len(), 2, "one model per group");
            assert!(combo.iter().all(|&m| m < model.pool().len()));
        }
    }

    #[test]
    fn single_cluster_recovers_global_fairness_mode() {
        let split = quick_split(600, 2);
        let mut cfg = quick_config();
        cfg.clustering = ClusterSpec::FixedK(1);
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert_eq!(model.n_regions(), 1);
    }

    #[test]
    fn log_means_clustering_runs() {
        let split = quick_split(900, 3);
        let mut cfg = quick_config();
        cfg.clustering = ClusterSpec::LogMeans;
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert!(model.n_regions() >= 2);
    }

    #[test]
    fn proxy_strategies_flow_through() {
        let mut dcfg = SyntheticConfig::implicit(0.4);
        dcfg.n = 900;
        let ds = generate(&dcfg, 4).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 4).unwrap();
        let mut cfg = quick_config();
        cfg.proxy = ProxyStrategy::Reweigh;
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert!(model.proxy_outcome().weights.is_some());
        cfg.proxy = ProxyStrategy::Remove { delta: 0.3, p_threshold: 0.05 };
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert!(model.proxy_outcome().attrs.len() < 8);
    }

    #[test]
    fn empty_pool_is_rejected() {
        let split = quick_split(600, 5);
        let pool = ModelPool::from_models(vec![]);
        let err = FalccModel::fit_with_pool(&split.validation, pool, &quick_config());
        assert!(matches!(err, Err(FalccError::NoApplicableModel { .. })));
    }

    #[test]
    fn invalid_config_is_rejected_before_work() {
        let split = quick_split(600, 6);
        let mut cfg = quick_config();
        cfg.gap_fill_k = 0;
        assert!(matches!(
            FalccModel::fit(&split.train, &split.validation, &cfg),
            Err(FalccError::InvalidConfig { .. })
        ));
        let mut cfg = quick_config();
        cfg.individual_assessment_k = Some(0);
        assert!(matches!(
            FalccModel::fit(&split.train, &split.validation, &cfg),
            Err(FalccError::InvalidConfig { .. })
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Gap filling guarantees: after it runs, every cluster's
        /// assessment set contains members of every sensitive group, even
        /// when the clustering itself left groups out — regardless of
        /// seed, cluster count, or how unbalanced the data is.
        #[test]
        fn gap_filled_sets_cover_every_group(
            seed in 0u64..1000,
            k in 1usize..7,
            imbalance in 0.05f64..0.5,
        ) {
            use proptest::prelude::prop_assert;
            let mut dcfg = SyntheticConfig::social(0.3);
            dcfg.n = 300;
            dcfg.p_protected = imbalance;
            let ds = generate(&dcfg, seed).unwrap();
            let n_groups = ds.group_index().len();
            let attrs = ds.schema().non_sensitive_attrs();
            let projected = ds.project(&attrs, None);
            let kmeans = falcc_clustering::KMeans::new(k, seed).fit(&projected);
            let tree = KdTree::build(projected);
            let sets = gap_fill(&kmeans, &tree, &ds, n_groups, 5);
            prop_assert!(sets.len() == kmeans.k());
            for (c, members) in sets.iter().enumerate() {
                prop_assert!(!members.is_empty(), "cluster {c} empty");
                let mut present = vec![false; n_groups];
                for &i in members {
                    present[ds.group(i).index()] = true;
                }
                prop_assert!(
                    present.iter().all(|&p| p),
                    "cluster {c} lacks a group after gap filling: {present:?}"
                );
            }
        }
    }

    #[test]
    fn individual_assessment_mode_improves_consistency() {
        use crate::framework::FairClassifier;
        use falcc_metrics::individual::consistency;
        let split = quick_split(2500, 7);
        let fit_with = |k: Option<usize>| {
            let mut cfg = quick_config();
            cfg.individual_assessment_k = k;
            let model =
                FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
            let preds = model.predict_dataset(&split.test);
            let attrs = split.test.schema().non_sensitive_attrs();
            let projected = split.test.project(&attrs, None);
            consistency(&projected, &preds, 5)
        };
        let group_mode = fit_with(None);
        let individual_mode = fit_with(Some(5));
        // Directional check with a generalisation allowance: the mode
        // optimises consistency on the *validation* clusters, and the test
        // measures it on held-out data with k-NN neighbourhoods, so small
        // regressions are sampling noise, not a defect.
        assert!(
            individual_mode >= group_mode - 0.05,
            "consistency-driven assessment must not reduce consistency: \
             {individual_mode} vs {group_mode}"
        );
    }
}
