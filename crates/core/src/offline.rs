//! The FALCC offline phase: proxy mitigation → clustering → gap filling →
//! model assessment (paper §3.3–§3.6).

use crate::baseline::MonitorBaseline;
use crate::checkpoint::{fingerprint, CheckpointJournal, ProjectionDigest, Stage};
use crate::config::{ClusterSpec, FalccConfig};
use crate::error::FalccError;
use crate::faults::{FaultPlan, FaultSite};
use crate::proxy::ProxyOutcome;
use falcc_clustering::{elbow_k, log_means, KEstimateConfig, KdTree, KMeans, KMeansModel};
use falcc_dataset::{Dataset, GroupId};
use falcc_metrics::LossConfig;
use falcc_models::{
    enumerate_combinations, parallel_map, predict_dataset, GridCheckpoint, ModelPool, ModelSpec,
    TrainedModel,
};

/// Adapts the checkpoint journal to the models crate's per-member
/// [`GridCheckpoint`] hook. `store` is infallible by signature, so journal
/// I/O errors are buffered here and surfaced once training returns.
struct JournalGrid<'a> {
    journal: &'a mut CheckpointJournal,
    error: Option<FalccError>,
}

impl GridCheckpoint for JournalGrid<'_> {
    fn load(&mut self, slot: usize) -> Option<ModelSpec> {
        self.journal.fetch(Stage::PoolMember(slot))
    }

    fn store(&mut self, slot: usize, spec: &ModelSpec) {
        if self.error.is_none() {
            if let Err(e) = self.journal.commit(Stage::PoolMember(slot), spec) {
                self.error = Some(e);
            }
        }
    }
}

/// One region's assessment outcome, as journaled per region and fed to
/// fallback resolution: the winning combination (`None` for a degenerate
/// region) plus the per-group presence mask.
type RegionAssessment = (Option<Vec<usize>>, Vec<bool>);

/// A fitted FALCC model: everything the online phase needs.
///
/// * the trained, diverse model pool `M`;
/// * the cluster centroids (in the proxy-mitigated projection space);
/// * the per-cluster best model combination `MC` (one pool index per
///   sensitive group);
/// * the proxy outcome so new samples are projected identically.
#[derive(Clone)]
pub struct FalccModel {
    pub(crate) schema: falcc_dataset::Schema,
    pub(crate) pool: ModelPool,
    pub(crate) kmeans: KMeansModel,
    /// `combos[cluster][group.index()]` → pool model index.
    pub(crate) combos: Vec<Vec<usize>>,
    pub(crate) proxy: ProxyOutcome,
    pub(crate) group_index: falcc_dataset::GroupIndex,
    pub(crate) loss: LossConfig,
    pub(crate) name: String,
    /// Worker threads for batched online classification (0 = available
    /// parallelism). Carried over from [`FalccConfig::threads`] at fit
    /// time; a throughput knob only — predictions are identical for every
    /// value.
    pub(crate) threads: usize,
    /// Euclidean norm of each centroid, cached once per fitted model for
    /// the online nearest-centroid prune. Derived state — recomputed on
    /// restore, never serialised.
    pub(crate) centroid_norms: Vec<f64>,
    /// Fault-injection schedule carried over from the fitting config so
    /// the online phase honours [`FaultSite::NonFiniteRow`] injections.
    /// Empty in production; never serialised (restored models get the
    /// default plan).
    pub(crate) faults: FaultPlan,
    /// Per-region validation statistics (occupancy, group mix, training
    /// DP) — the reference the live serving monitors measure drift
    /// against. Persisted with the model.
    pub(crate) baseline: MonitorBaseline,
}

impl FalccModel {
    /// Runs the full offline phase: diverse model training on `train`,
    /// then clustering + assessment on `validation`.
    ///
    /// # Errors
    /// Propagates configuration validation, dataset errors, and coverage
    /// failures ([`FalccError::GroupAbsent`],
    /// [`FalccError::NoApplicableModel`]).
    pub fn fit(
        train: &Dataset,
        validation: &Dataset,
        config: &FalccConfig,
    ) -> Result<Self, FalccError> {
        config.validate()?;
        let _sp = falcc_telemetry::span("offline.fit");
        // Crash consistency: with a checkpoint spec configured, every
        // phase journals its result and a resume picks up after the last
        // valid checkpoint. The journal is advisory state only — each
        // phase below either fetches a bit-exact prior result or computes
        // it from scratch, so the fitted model is identical with or
        // without a journal, interrupted or not, at any thread count.
        let mut journal = match &config.checkpoint {
            Some(spec) => {
                let fp = fingerprint(config, train, validation);
                Some(CheckpointJournal::open(spec, fp, &config.faults)?)
            }
            None => None,
        };
        let mut pool_cfg = config.pool;
        pool_cfg.seed ^= config.seed;
        pool_cfg.threads = config.threads;
        let pool = {
            let _pool_sp = falcc_telemetry::span("offline.pool_training");
            match journal.as_mut() {
                None => ModelPool::train_diverse(train, validation, &pool_cfg),
                Some(journal) => {
                    Self::train_pool_checkpointed(train, validation, &pool_cfg, journal)?
                }
            }
        };
        Self::fit_with_pool_inner(validation, pool, config, journal.as_mut())
    }

    /// Diverse pool training against a journal: per-member
    /// sub-checkpoints via [`JournalGrid`], plus a [`Stage::PoolTraining`]
    /// checkpoint of the selected pool that lets resumes skip diversity
    /// selection entirely.
    fn train_pool_checkpointed(
        train: &Dataset,
        validation: &Dataset,
        pool_cfg: &falcc_models::PoolConfig,
        journal: &mut CheckpointJournal,
    ) -> Result<ModelPool, FalccError> {
        if let Some(saved) = journal.fetch::<Vec<(ModelSpec, Option<GroupId>)>>(Stage::PoolTraining)
        {
            return Ok(ModelPool::from_models(
                saved
                    .into_iter()
                    .map(|(spec, group)| TrainedModel { model: spec.into_classifier(), group })
                    .collect(),
            ));
        }
        let mut hook = JournalGrid { journal, error: None };
        let pool = ModelPool::train_diverse_checkpointed(train, validation, pool_cfg, &mut hook);
        if let Some(e) = hook.error.take() {
            return Err(e);
        }
        // Every built-in trainer exposes a spec; a pool member without one
        // cannot appear here (custom pools enter via `fit_with_pool`,
        // which does not journal), so the selected pool is always
        // checkpointable.
        let specs: Vec<(ModelSpec, Option<GroupId>)> = pool
            .models
            .iter()
            .filter_map(|m| m.model.to_spec().map(|s| (s, m.group)))
            .collect();
        if specs.len() == pool.models.len() {
            journal.commit(Stage::PoolTraining, &specs)?;
        }
        Ok(pool)
    }

    /// Runs the offline phase with an externally provided model pool —
    /// the `FALCC*` configuration of the paper, which plugs in fair
    /// classifiers (LFR, Fair-SMOTE, FaX) as pool members.
    ///
    /// # Errors
    /// Same conditions as [`Self::fit`].
    pub fn fit_with_pool(
        validation: &Dataset,
        pool: ModelPool,
        config: &FalccConfig,
    ) -> Result<Self, FalccError> {
        // External pools may contain custom classifiers with no
        // serialisable spec, and the run fingerprint cannot cover them —
        // so this entry point never journals. Checkpointing lives on
        // [`Self::fit`].
        Self::fit_with_pool_inner(validation, pool, config, None)
    }

    fn fit_with_pool_inner(
        validation: &Dataset,
        mut pool: ModelPool,
        config: &FalccConfig,
        mut journal: Option<&mut CheckpointJournal>,
    ) -> Result<Self, FalccError> {
        config.validate()?;
        if pool.is_empty() {
            return Err(FalccError::NoApplicableModel { group: 0 });
        }

        // Graceful degradation (quarantine): drop pool members whose
        // training failed (injected via the fault plan) or that produce
        // non-finite probabilities on a probe of the validation set, and
        // continue with the survivors as long as the configured floor
        // holds. A diverse pool tolerates losing members — that is the
        // point of training several (§3.3).
        let mut failed: Vec<usize> = (0..pool.len())
            .filter(|&i| config.faults.fires(FaultSite::PoolMember, i as u64))
            .collect();
        failed.extend(pool.unsound_members(validation, 32));
        failed.sort_unstable();
        failed.dedup();
        let quarantined = pool.quarantine(&failed);
        if quarantined > 0 {
            falcc_telemetry::counters::POOL_MEMBERS_QUARANTINED.add(quarantined as u64);
            if falcc_telemetry::enabled() {
                falcc_telemetry::event(
                    "offline.quarantine",
                    format!("{quarantined} pool member(s) quarantined, {} survive", pool.len()),
                );
            }
        }
        if pool.len() < config.min_pool_size {
            return Err(FalccError::PoolDepleted {
                survivors: pool.len(),
                quarantined,
                min_pool_size: config.min_pool_size,
            });
        }

        let group_index = validation.group_index().clone();
        let n_groups = group_index.len();

        // Every group must appear in the validation data — otherwise even
        // gap filling has nothing to pull from.
        let counts = validation.group_counts();
        if let Some(g) = counts.iter().position(|&c| c == 0) {
            return Err(FalccError::GroupAbsent { group: g });
        }

        // §3.4 proxy mitigation → attribute selection/weights for
        // clustering.
        let proxy = {
            let _proxy_sp = falcc_telemetry::span("offline.proxy");
            match journal.as_deref().and_then(|j| j.fetch::<ProxyOutcome>(Stage::Proxy)) {
                Some(resumed) => resumed,
                None => {
                    let fresh = config.proxy.apply(validation);
                    if let Some(j) = journal.as_deref_mut() {
                        j.commit(Stage::Proxy, &fresh)?;
                    }
                    fresh
                }
            }
        };

        // §3.5 clustering of the projected validation set. Projection is
        // cheap, so it is always recomputed; its journal record is a
        // digest-only *verification* checkpoint guarding against a
        // fingerprint collision feeding a resumed run different data.
        let projected = {
            let _proj_sp = falcc_telemetry::span("offline.projection");
            validation.project(&proxy.attrs, proxy.weights.as_deref())
        };
        if let Some(j) = journal.as_deref_mut() {
            let digest = ProjectionDigest::of(projected.n_rows, projected.n_cols, &projected.data);
            match j.fetch::<ProjectionDigest>(Stage::Projection) {
                Some(resumed) if resumed != digest => {
                    return Err(FalccError::CheckpointCorrupt {
                        detail: format!(
                            "projection digest mismatch: journal has {}, this run computed {}",
                            resumed.hash, digest.hash
                        ),
                    });
                }
                Some(_) => {}
                None => j.commit(Stage::Projection, &digest)?,
            }
        }
        let k = {
            let _k_sp = falcc_telemetry::span("offline.k_estimation");
            match journal.as_deref().and_then(|j| j.fetch::<usize>(Stage::KEstimation)) {
                Some(resumed) => resumed,
                None => {
                    let fresh = match config.clustering {
                        ClusterSpec::FixedK(k) => k,
                        ClusterSpec::LogMeans => {
                            let est = KEstimateConfig::for_rows(projected.n_rows, config.seed);
                            log_means(&projected, &est)
                        }
                        ClusterSpec::Elbow => {
                            let est = KEstimateConfig::for_rows(projected.n_rows, config.seed);
                            elbow_k(&projected, &est)
                        }
                    };
                    if let Some(j) = journal.as_deref_mut() {
                        j.commit(Stage::KEstimation, &fresh)?;
                    }
                    fresh
                }
            }
        };
        let kmeans = {
            let _cluster_sp = falcc_telemetry::span_labeled("offline.clustering", format!("k={k}"));
            match journal.as_deref().and_then(|j| j.fetch::<KMeansModel>(Stage::Clustering)) {
                Some(resumed) => resumed,
                None => {
                    let fresh = KMeans::new(k, config.seed).fit(&projected);
                    if let Some(j) = journal.as_deref_mut() {
                        j.commit(Stage::Clustering, &fresh)?;
                    }
                    fresh
                }
            }
        };
        falcc_telemetry::gauges::OFFLINE_CLUSTERS.set(kmeans.k() as u64);
        falcc_telemetry::gauges::OFFLINE_POOL_SIZE.set(pool.len() as u64);

        // Gap filling (§3.5): make sure every cluster's assessment set has
        // members of every group, pulling in the nearest representatives.
        let (tree, mut assessment_sets) = {
            let _gap_sp = falcc_telemetry::span("offline.gap_fill");
            let tree = KdTree::build(projected);
            let sets = match
                journal.as_deref().and_then(|j| j.fetch::<Vec<Vec<usize>>>(Stage::GapFill))
            {
                Some(resumed) => resumed,
                None => {
                    let fresh =
                        gap_fill(&kmeans, &tree, validation, n_groups, config.gap_fill_k);
                    if let Some(j) = journal.as_deref_mut() {
                        j.commit(Stage::GapFill, &fresh)?;
                    }
                    fresh
                }
            };
            (tree, sets)
        };

        // Fault injection happens *after* gap filling on purpose: earlier
        // damage would simply be healed by the gap filler, and the point
        // is to exercise the degradation paths below it.
        if !config.faults.is_empty() {
            for (c, members) in assessment_sets.iter_mut().enumerate() {
                if config.faults.fires(FaultSite::ClusterEmpty, c as u64) {
                    members.clear();
                    continue;
                }
                let dropped = config.faults.dropped_groups(c as u64);
                if !dropped.is_empty() {
                    members.retain(|&i| !dropped.contains(&validation.group(i).0));
                }
            }
        }

        // §3.3 candidate combinations; §3.6 assessment.
        let candidates = enumerate_combinations(&pool, n_groups);
        if candidates.is_empty() {
            let uncovered = (0..n_groups)
                .find(|&g| pool.applicable(GroupId(g as u16)).is_empty())
                .unwrap_or(0);
            return Err(FalccError::NoApplicableModel { group: uncovered });
        }

        falcc_telemetry::gauges::OFFLINE_COMBINATIONS.set(candidates.len() as u64);

        // Precompute every pool model's predictions on the validation set
        // once — assessment then only gathers. Models predict
        // independently, so this fans out across threads.
        let preds: Vec<Vec<u8>> = {
            let _preds_sp = falcc_telemetry::span("offline.pool_predictions");
            parallel_map(&pool.models, config.threads, |_, m| {
                predict_dataset(m.model.as_ref(), validation)
            })
        };

        // Within a numerical tolerance of the best loss, prefer the
        // combination using the *fewest distinct models*: near-ties are
        // common on small clusters, and gratuitous per-group model
        // switching hurts individual consistency without buying fairness.
        const TIE_TOLERANCE: f64 = 1e-3;
        let distinct_models = |combo: &[usize]| -> usize {
            let mut sorted = combo.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len()
        };
        // Clusters are assessed independently (shared read-only inputs,
        // no randomness), so the per-cluster loop fans out across threads;
        // the ordered merge keeps `combos[c]` aligned with cluster `c`.
        // Worker spans parent under the assessment span by explicit id
        // with the cluster index as ordinal (deterministic tree for every
        // thread count).
        let assess_sp = falcc_telemetry::span("offline.assessment");
        let assess_sp_id = assess_sp.id();
        // Each cluster yields its best combination *and* which groups its
        // assessment set actually contained; degenerate clusters (empty
        // set, or no finitely-scored candidate) yield no combination and
        // are healed by the fallback chain below.
        let assess_region = |c: usize, members: &Vec<usize>| -> (Option<Vec<usize>>, Vec<bool>) {
            let _w = falcc_telemetry::span_under(assess_sp_id, "offline.assess_cluster", c as u64);
            let mut present = vec![false; n_groups];
            for &i in members.iter() {
                present[validation.group(i).index()] = true;
            }
            if members.is_empty() {
                falcc_telemetry::counters::DEGENERATE_CLUSTERS.incr();
                return (None, present);
            }
            let y: Vec<u8> = members.iter().map(|&i| validation.label(i)).collect();
            let g: Vec<GroupId> = members.iter().map(|&i| validation.group(i)).collect();
            // Individual-fairness mode (§3.6): each member's k nearest
            // neighbours *within this cluster* (local indices into
            // `members`), found via the same kd-tree that served gap
            // filling — the paper's "clusters as substitutes for kNN".
            let neighbors: Option<Vec<Vec<usize>>> =
                config.individual_assessment_k.map(|k| {
                    let local: std::collections::HashMap<usize, usize> = members
                        .iter()
                        .enumerate()
                        .map(|(pos, &i)| (i, pos))
                        .collect();
                    members
                        .iter()
                        .map(|&i| {
                            tree.nearest_filtered(tree.point(i), k + 1, |j| {
                                j != i && local.contains_key(&j)
                            })
                            .into_iter()
                            .take(k)
                            .map(|(j, _)| local[&j])
                            .collect()
                        })
                        .collect()
                });
            let assess = |z: &[u8]| -> f64 {
                match &neighbors {
                    None => config.loss.evaluate(&y, z, &g, n_groups),
                    Some(nbrs) => {
                        let lambda = config.loss.lambda;
                        let inacc = falcc_metrics::inaccuracy(&y, z);
                        let inconsistency =
                            1.0 - falcc_metrics::consistency_with_neighbors(z, nbrs);
                        lambda * inacc + (1.0 - lambda) * inconsistency
                    }
                }
            };
            let mut scored: Vec<(f64, usize)> = candidates
                .iter()
                .enumerate()
                .map(|(ci, combo)| {
                    let z: Vec<u8> = members
                        .iter()
                        .zip(&g)
                        .map(|(&i, gi)| preds[combo[gi.index()]][i])
                        .collect();
                    (assess(&z), ci)
                })
                .collect();
            // A candidate whose loss comes out NaN (e.g. a metric over an
            // injected pathological slice) is unrankable — drop it rather
            // than letting it win a NaN-poisoned sort.
            scored.retain(|&(l, _)| l.is_finite());
            if scored.is_empty() {
                falcc_telemetry::counters::DEGENERATE_CLUSTERS.incr();
                return (None, present);
            }
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let best_loss = scored[0].0;
            let chosen = scored
                .iter()
                .take_while(|&&(l, _)| l <= best_loss + TIE_TOLERANCE)
                .min_by_key(|&&(_, ci)| distinct_models(&candidates[ci]))
                .map(|&(_, ci)| ci)
                .unwrap_or(scored[0].1);
            (Some(candidates[chosen].clone()), present)
        };
        // Clusters assess in parallel in both branches. In the journaled
        // branch, resumed regions are fetched, the rest are assessed with
        // their original cluster ordinals (identical seeds and spans) and
        // committed in index order — a deterministic commit sequence —
        // then the assembled vector gets its own checkpoint.
        let assessed: Vec<RegionAssessment> = match journal {
            None => parallel_map(&assessment_sets, config.threads, |c, members| {
                assess_region(c, members)
            }),
            Some(j) => match j.fetch(Stage::Assessment) {
                Some(resumed) => resumed,
                None => {
                    let mut slots: Vec<Option<RegionAssessment>> =
                        (0..assessment_sets.len()).map(|c| j.fetch(Stage::Region(c))).collect();
                    let missing: Vec<usize> = slots
                        .iter()
                        .enumerate()
                        .filter_map(|(c, s)| s.is_none().then_some(c))
                        .collect();
                    let fresh = parallel_map(&missing, config.threads, |_, &c| {
                        assess_region(c, &assessment_sets[c])
                    });
                    for (&c, value) in missing.iter().zip(&fresh) {
                        j.commit(Stage::Region(c), value)?;
                        slots[c] = Some(value.clone());
                    }
                    let all: Vec<RegionAssessment> =
                        slots.into_iter().flatten().collect();
                    j.commit(Stage::Assessment, &all)?;
                    all
                }
            },
        };
        drop(assess_sp);

        let combos = resolve_fallbacks(
            assessed,
            &kmeans.centroids,
            &preds,
            &candidates,
            validation,
            n_groups,
            &config.loss,
        );

        // The monitor baseline reads the resolved combinations: the DP a
        // region trained to is the DP of the combination it will actually
        // serve, fallbacks included.
        let baseline = MonitorBaseline::compute(&kmeans, validation, &preds, &combos, n_groups);

        let centroid_norms = kmeans.centroid_norms();
        Ok(Self {
            schema: validation.schema().clone(),
            pool,
            kmeans,
            combos,
            proxy,
            group_index,
            loss: config.loss,
            name: "FALCC".to_string(),
            threads: config.threads,
            centroid_norms,
            faults: config.faults.clone(),
            baseline,
        })
    }

    /// Number of local regions (clusters).
    pub fn n_regions(&self) -> usize {
        self.kmeans.k()
    }

    /// The cluster centroids, in the proxy-mitigated projection space
    /// (one per region, aligned with [`Self::combo`] indices).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.kmeans.centroids
    }

    /// The trained model pool.
    pub fn pool(&self) -> &ModelPool {
        &self.pool
    }

    /// The model combination for cluster `c` (pool indices per group).
    pub fn combo(&self, c: usize) -> &[usize] {
        &self.combos[c]
    }

    /// The proxy-mitigation outcome applied before clustering.
    pub fn proxy_outcome(&self) -> &ProxyOutcome {
        &self.proxy
    }

    /// The loss configuration used during assessment.
    pub fn loss_config(&self) -> LossConfig {
        self.loss
    }

    /// Overrides the reported algorithm name (used by the harness to
    /// distinguish FALCC from FALCC*).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Worker threads the batched online phase uses (0 = available
    /// parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the worker-thread count for batched classification
    /// (0 = available parallelism). A throughput knob only: predictions
    /// are bit-identical for every value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The fault-injection schedule the online phase honours (empty in
    /// production).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replaces the online fault-injection schedule — lets robustness
    /// tests poison batch rows on a model fitted (or restored) without
    /// injections.
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The offline monitor baseline: per-region occupancy, group mix, and
    /// training demographic parity on the validation set.
    pub fn monitor_baseline(&self) -> &MonitorBaseline {
        &self.baseline
    }

    /// Builds a live-monitor configuration around this model's baseline —
    /// ready for [`falcc_telemetry::monitor::install`].
    pub fn monitor_spec(&self, window_len: u64, windows: usize) -> falcc_telemetry::MonitorSpec {
        self.baseline.spec(window_len, windows)
    }

    pub(crate) fn kmeans(&self) -> &KMeansModel {
        &self.kmeans
    }

    pub(crate) fn centroid_norms(&self) -> &[f64] {
        &self.centroid_norms
    }

    pub(crate) fn group_index(&self) -> &falcc_dataset::GroupIndex {
        &self.group_index
    }

    /// The schema of the data the model was fitted on — used to load
    /// compatible CSV files for prediction.
    pub fn schema(&self) -> &falcc_dataset::Schema {
        &self.schema
    }

    pub(crate) fn name_str(&self) -> &str {
        &self.name
    }
}

/// The degradation fallback chain for region/group coverage holes.
///
/// Assessment can leave holes: a degenerate region contributes no
/// combination at all, and a region whose assessment set lacked a group
/// scored its combination without evidence for that group. Both are healed
/// deterministically, per `(region, group)` cell:
///
/// 1. **Nearest covering region** — copy the group's model choice from the
///    non-degenerate region whose centroid is closest (ties broken by
///    region index) and whose assessment set contained the group.
/// 2. **Global best** — if no region covers the group, fall back to the
///    combination with the lowest loss over the *whole* validation set.
///
/// Every step is pure arithmetic over already-merged, input-ordered data,
/// so degraded models stay bit-identical across thread counts.
fn resolve_fallbacks(
    assessed: Vec<RegionAssessment>,
    centroids: &[Vec<f64>],
    preds: &[Vec<u8>],
    candidates: &[Vec<usize>],
    validation: &Dataset,
    n_groups: usize,
    loss: &LossConfig,
) -> Vec<Vec<usize>> {
    let sq_dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    };
    // A region only lends coverage for a group if it produced a
    // combination *and* actually saw that group.
    let covers = |r: usize, g: usize| -> bool { assessed[r].0.is_some() && assessed[r].1[g] };
    let needs_fallback = assessed
        .iter()
        .any(|(combo, present)| combo.is_none() || present.iter().any(|&p| !p));
    // Last resort, shared by every hole: the combination that scores best
    // globally. Computed once, only when some hole exists.
    let global_best: Vec<usize> = if needs_fallback {
        let labels = validation.labels();
        let groups = validation.groups();
        let mut best = (f64::INFINITY, 0usize);
        for (ci, combo) in candidates.iter().enumerate() {
            let z: Vec<u8> = (0..validation.len())
                .map(|i| preds[combo[groups[i].index()]][i])
                .collect();
            let l = loss.evaluate(labels, &z, groups, n_groups);
            if l.total_cmp(&best.0) == std::cmp::Ordering::Less {
                best = (l, ci);
            }
        }
        candidates[best.1].clone()
    } else {
        Vec::new()
    };

    assessed
        .iter()
        .enumerate()
        .map(|(c, (base, present))| {
            // A degenerate region trusts none of its (nonexistent)
            // evidence; a healthy one only distrusts uncovered groups.
            let trusted = |g: usize| base.is_some() && present[g];
            let mut resolved = match base {
                Some(combo) => combo.clone(),
                // Scaffold only — every entry is revisited by the loop
                // below, which does the fallback accounting.
                None => global_best.clone(),
            };
            for g in 0..n_groups {
                if trusted(g) {
                    continue;
                }
                let src = (0..assessed.len())
                    .filter(|&r| r != c && covers(r, g))
                    .min_by(|&a, &b| {
                        sq_dist(&centroids[c], &centroids[a])
                            .total_cmp(&sq_dist(&centroids[c], &centroids[b]))
                    });
                match src {
                    Some(r) => {
                        if let Some(combo) = &assessed[r].0 {
                            resolved[g] = combo[g];
                        }
                        falcc_telemetry::counters::REGION_GROUP_FALLBACKS.incr();
                        if falcc_telemetry::enabled() {
                            falcc_telemetry::event(
                                "offline.region_fallback",
                                format!("region {c} group {g}: borrowed from region {r}"),
                            );
                        }
                    }
                    None => {
                        // `global_best` is non-empty here: reaching this
                        // arm implies a hole, which forced its
                        // computation above.
                        resolved[g] = global_best.get(g).copied().unwrap_or(0);
                        falcc_telemetry::counters::REGION_GLOBAL_FALLBACKS.incr();
                        if falcc_telemetry::enabled() {
                            falcc_telemetry::event(
                                "offline.region_fallback",
                                format!("region {c} group {g}: global-best combination"),
                            );
                        }
                    }
                }
            }
            resolved
        })
        .collect()
}

/// Gap filling (§3.5): each cluster's member list, extended so every
/// sensitive group is represented — clusters missing a group pull in that
/// group's `gap_fill_k` nearest validation rows (by centroid distance).
fn gap_fill(
    kmeans: &KMeansModel,
    tree: &KdTree,
    validation: &Dataset,
    n_groups: usize,
    gap_fill_k: usize,
) -> Vec<Vec<usize>> {
    let mut assessment_sets = kmeans.cluster_members();
    for (c, members) in assessment_sets.iter_mut().enumerate() {
        let mut present = vec![false; n_groups];
        for &i in members.iter() {
            present[validation.group(i).index()] = true;
        }
        for (g, &has_members) in present.iter().enumerate() {
            if has_members {
                continue;
            }
            let gid = GroupId(g as u16);
            let fill = tree.nearest_filtered(&kmeans.centroids[c], gap_fill_k, |i| {
                validation.group(i) == gid
            });
            members.extend(fill.iter().map(|&(i, _)| i));
        }
    }
    assessment_sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FalccConfig;
    use crate::proxy::ProxyStrategy;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};
    use falcc_dataset::{SplitRatios, ThreeWaySplit};

    fn quick_split(n: usize, seed: u64) -> ThreeWaySplit {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = n;
        let ds = generate(&cfg, seed).unwrap();
        ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).unwrap()
    }

    fn quick_config() -> FalccConfig {
        let mut cfg = FalccConfig::default();
        cfg.scale_for_tests();
        cfg
    }

    #[test]
    fn fit_produces_combo_per_cluster() {
        let split = quick_split(800, 1);
        let model = FalccModel::fit(&split.train, &split.validation, &quick_config()).unwrap();
        assert_eq!(model.n_regions(), 4);
        for c in 0..model.n_regions() {
            let combo = model.combo(c);
            assert_eq!(combo.len(), 2, "one model per group");
            assert!(combo.iter().all(|&m| m < model.pool().len()));
        }
    }

    #[test]
    fn single_cluster_recovers_global_fairness_mode() {
        let split = quick_split(600, 2);
        let mut cfg = quick_config();
        cfg.clustering = ClusterSpec::FixedK(1);
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert_eq!(model.n_regions(), 1);
    }

    #[test]
    fn log_means_clustering_runs() {
        let split = quick_split(900, 3);
        let mut cfg = quick_config();
        cfg.clustering = ClusterSpec::LogMeans;
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert!(model.n_regions() >= 2);
    }

    #[test]
    fn proxy_strategies_flow_through() {
        let mut dcfg = SyntheticConfig::implicit(0.4);
        dcfg.n = 900;
        let ds = generate(&dcfg, 4).unwrap();
        let split = ThreeWaySplit::split(&ds, SplitRatios::PAPER, 4).unwrap();
        let mut cfg = quick_config();
        cfg.proxy = ProxyStrategy::Reweigh;
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert!(model.proxy_outcome().weights.is_some());
        cfg.proxy = ProxyStrategy::Remove { delta: 0.3, p_threshold: 0.05 };
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert!(model.proxy_outcome().attrs.len() < 8);
    }

    #[test]
    fn quarantine_degrades_gracefully_until_the_floor() {
        let split = quick_split(800, 8);
        // Pool of 3, one injected training failure → fit continues on 2.
        let mut cfg = quick_config();
        cfg.faults.fail_pool_member(1);
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert_eq!(model.pool().len(), 2);
        let preds = {
            use crate::framework::FairClassifier;
            model.predict_dataset(&split.test)
        };
        assert!(preds.iter().all(|&z| z <= 1));

        // With a floor of 3 the same failure is a typed error, not a panic.
        let mut cfg = quick_config();
        cfg.min_pool_size = 3;
        cfg.faults.fail_pool_member(1);
        match FalccModel::fit(&split.train, &split.validation, &cfg) {
            Err(FalccError::PoolDepleted { survivors, quarantined, min_pool_size }) => {
                assert_eq!((survivors, quarantined, min_pool_size), (2, 1, 3));
            }
            other => panic!("expected PoolDepleted, got {:?}", other.map(|m| m.n_regions())),
        }
    }

    #[test]
    fn degenerate_and_missing_group_regions_fall_back() {
        use crate::framework::FairClassifier;
        let split = quick_split(800, 9);
        let mut cfg = quick_config();
        cfg.faults.empty_cluster(0);
        cfg.faults.drop_group_in_region(1, 0);
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        assert_eq!(model.n_regions(), 4);
        for c in 0..model.n_regions() {
            let combo = model.combo(c);
            assert_eq!(combo.len(), 2);
            assert!(combo.iter().all(|&m| m < model.pool().len()));
        }
        let preds = model.predict_dataset(&split.test);
        assert_eq!(preds.len(), split.test.len());
        assert!(preds.iter().all(|&z| z <= 1));
    }

    #[test]
    fn every_region_degenerate_falls_back_to_global_best() {
        use crate::framework::FairClassifier;
        let split = quick_split(700, 10);
        let mut cfg = quick_config();
        for c in 0..4 {
            cfg.faults.empty_cluster(c);
        }
        let model = FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
        // All regions share the global-best combination.
        let first = model.combo(0).to_vec();
        for c in 1..model.n_regions() {
            assert_eq!(model.combo(c), first.as_slice());
        }
        assert_eq!(model.predict_dataset(&split.test).len(), split.test.len());
    }

    #[test]
    fn empty_pool_is_rejected() {
        let split = quick_split(600, 5);
        let pool = ModelPool::from_models(vec![]);
        let err = FalccModel::fit_with_pool(&split.validation, pool, &quick_config());
        assert!(matches!(err, Err(FalccError::NoApplicableModel { .. })));
    }

    #[test]
    fn invalid_config_is_rejected_before_work() {
        let split = quick_split(600, 6);
        let mut cfg = quick_config();
        cfg.gap_fill_k = 0;
        assert!(matches!(
            FalccModel::fit(&split.train, &split.validation, &cfg),
            Err(FalccError::InvalidConfig { .. })
        ));
        let mut cfg = quick_config();
        cfg.individual_assessment_k = Some(0);
        assert!(matches!(
            FalccModel::fit(&split.train, &split.validation, &cfg),
            Err(FalccError::InvalidConfig { .. })
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Gap filling guarantees: after it runs, every cluster's
        /// assessment set contains members of every sensitive group, even
        /// when the clustering itself left groups out — regardless of
        /// seed, cluster count, or how unbalanced the data is.
        #[test]
        fn gap_filled_sets_cover_every_group(
            seed in 0u64..1000,
            k in 1usize..7,
            imbalance in 0.05f64..0.5,
        ) {
            use proptest::prelude::prop_assert;
            let mut dcfg = SyntheticConfig::social(0.3);
            dcfg.n = 300;
            dcfg.p_protected = imbalance;
            let ds = generate(&dcfg, seed).unwrap();
            let n_groups = ds.group_index().len();
            let attrs = ds.schema().non_sensitive_attrs();
            let projected = ds.project(&attrs, None);
            let kmeans = falcc_clustering::KMeans::new(k, seed).fit(&projected);
            let tree = KdTree::build(projected);
            let sets = gap_fill(&kmeans, &tree, &ds, n_groups, 5);
            prop_assert!(sets.len() == kmeans.k());
            for (c, members) in sets.iter().enumerate() {
                prop_assert!(!members.is_empty(), "cluster {c} empty");
                let mut present = vec![false; n_groups];
                for &i in members {
                    present[ds.group(i).index()] = true;
                }
                prop_assert!(
                    present.iter().all(|&p| p),
                    "cluster {c} lacks a group after gap filling: {present:?}"
                );
            }
        }
    }

    #[test]
    fn checkpointed_fit_is_bit_identical_plain_resumed_and_cross_threaded() {
        use crate::checkpoint::{CheckpointSpec, MANIFEST};
        use crate::persist::SavedFalccModel;
        let split = quick_split(700, 11);
        let dir = std::env::temp_dir().join(format!("falcc_fit_ck_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let snapshot = |model: &FalccModel| -> String {
            SavedFalccModel::capture(model).unwrap().to_json().unwrap()
        };
        let mut cfg = quick_config();
        cfg.seed = 11;
        let baseline = snapshot(&FalccModel::fit(&split.train, &split.validation, &cfg).unwrap());

        // A journaled run produces the same bytes as an unjournaled one.
        cfg.checkpoint = Some(CheckpointSpec::new(&dir));
        let journaled = snapshot(&FalccModel::fit(&split.train, &split.validation, &cfg).unwrap());
        assert_eq!(baseline, journaled, "journaling changed the fitted model");

        // Truncate the journal to a prefix — as if the run died mid-way —
        // and resume at a different thread count: still the same bytes.
        let manifest = dir.join(MANIFEST);
        let text = std::fs::read_to_string(&manifest).unwrap();
        let prefix: Vec<&str> = text.lines().take(5).collect();
        std::fs::write(&manifest, format!("{}\n", prefix.join("\n"))).unwrap();
        cfg.checkpoint = Some(CheckpointSpec::new(&dir).resuming());
        cfg.threads = 2;
        let resumed = snapshot(&FalccModel::fit(&split.train, &split.validation, &cfg).unwrap());
        assert_eq!(baseline, resumed, "resume after truncation changed the fitted model");

        // Resume from the now-complete journal: every stage is fetched.
        cfg.threads = 1;
        let replayed = snapshot(&FalccModel::fit(&split.train, &split.validation, &cfg).unwrap());
        assert_eq!(baseline, replayed, "full-journal replay changed the fitted model");

        // A config change makes the journal stale — typed rejection.
        cfg.seed = 12;
        match FalccModel::fit(&split.train, &split.validation, &cfg) {
            Err(FalccError::CheckpointStale { .. }) => {}
            other => panic!("expected CheckpointStale, got {:?}", other.map(|m| m.n_regions())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn individual_assessment_mode_improves_consistency() {
        use crate::framework::FairClassifier;
        use falcc_metrics::individual::consistency;
        let split = quick_split(2500, 7);
        let fit_with = |k: Option<usize>| {
            let mut cfg = quick_config();
            cfg.individual_assessment_k = k;
            let model =
                FalccModel::fit(&split.train, &split.validation, &cfg).unwrap();
            let preds = model.predict_dataset(&split.test);
            let attrs = split.test.schema().non_sensitive_attrs();
            let projected = split.test.project(&attrs, None);
            consistency(&projected, &preds, 5)
        };
        let group_mode = fit_with(None);
        let individual_mode = fit_with(Some(5));
        // Directional check with a generalisation allowance: the mode
        // optimises consistency on the *validation* clusters, and the test
        // measures it on held-out data with k-NN neighbourhoods, so small
        // regressions are sampling noise, not a defect.
        assert!(
            individual_mode >= group_mode - 0.05,
            "consistency-driven assessment must not reduce consistency: \
             {individual_mode} vs {group_mode}"
        );
    }
}
