//! Shared durable-write and integrity primitives.
//!
//! Three on-disk writers — model snapshots ([`crate::persist`]),
//! checkpoint journals ([`crate::checkpoint`]), and binary artifacts
//! ([`crate::artifact`]) — share the same hardening recipe: an FNV-1a
//! checksum over the exact published bytes, and an atomic
//! write-temp/fsync/rename/dir-fsync publish step. This module is the
//! single home for those helpers so the recipe cannot drift between
//! writers.

use crate::error::FalccError;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the
/// accidental corruption this guards against (not an adversarial MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The integrity envelope wrapped around every serialised JSON snapshot.
/// The payload is carried as a string so the checksum covers its exact
/// bytes.
#[derive(Serialize, Deserialize)]
struct Envelope {
    magic: String,
    version: u32,
    /// FNV-1a 64-bit hash of `payload`, hex-encoded (a string survives
    /// JSON readers that clamp integers to 53 bits).
    checksum: String,
    payload: String,
}

/// Why [`open_envelope`] rejected its input — the envelope consumers
/// (model snapshots in [`crate::persist`], checkpoint journals in
/// [`crate::checkpoint`]) map these onto their own typed errors.
#[derive(Debug)]
pub(crate) enum EnvelopeFault {
    /// Damaged bytes: unparseable envelope, wrong magic, bad checksum.
    Corrupt(String),
    /// Intact envelope written by a different format version.
    VersionSkew(u32),
}

/// Wraps `payload` in the checksummed integrity envelope shared by model
/// snapshots and checkpoint records.
pub(crate) fn seal_envelope(
    magic: &str,
    version: u32,
    payload: String,
) -> Result<String, String> {
    let envelope = Envelope {
        magic: magic.to_string(),
        version,
        checksum: format!("{:016x}", fnv1a64(payload.as_bytes())),
        payload,
    };
    serde_json::to_string(&envelope).map_err(|e| e.to_string())
}

/// Verifies an envelope's magic, version, and payload checksum, returning
/// the payload string without touching its contents.
pub(crate) fn open_envelope(
    magic: &str,
    version: u32,
    json: &str,
) -> Result<String, EnvelopeFault> {
    let envelope: Envelope = serde_json::from_str(json)
        .map_err(|e| EnvelopeFault::Corrupt(format!("unreadable envelope: {e}")))?;
    if envelope.magic != magic {
        return Err(EnvelopeFault::Corrupt(format!("bad magic {:?}", envelope.magic)));
    }
    if envelope.version != version {
        return Err(EnvelopeFault::VersionSkew(envelope.version));
    }
    let declared = u64::from_str_radix(&envelope.checksum, 16).map_err(|_| {
        EnvelopeFault::Corrupt(format!("unparseable checksum {:?}", envelope.checksum))
    })?;
    let actual = fnv1a64(envelope.payload.as_bytes());
    if declared != actual {
        return Err(EnvelopeFault::Corrupt(format!(
            "checksum mismatch: declared {declared:016x}, payload hashes to {actual:016x}"
        )));
    }
    Ok(envelope.payload)
}

/// Renames `tmp` over `path`, surfacing a cross-filesystem rename as the
/// typed [`FalccError::CrossDeviceRename`] instead of a generic I/O error
/// (the temp file is cleaned up — it can never be adopted as the target).
pub(crate) fn rename_typed(tmp: &Path, path: &Path) -> Result<(), FalccError> {
    std::fs::rename(tmp, path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::CrossesDevices {
            let _ = std::fs::remove_file(tmp);
            FalccError::CrossDeviceRename { path: path.display().to_string() }
        } else {
            FalccError::Dataset(falcc_dataset::DatasetError::Io(e))
        }
    })
}

/// Writes `bytes` to `path` atomically *and durably*: the bytes land in a
/// sibling `.tmp` file which is fsynced before the rename, and the parent
/// directory is fsynced after it so the rename itself survives a crash.
/// A crash at any point leaves either the old content or the new — never
/// a torn file.
pub(crate) fn atomic_durable_write(path: &Path, bytes: &[u8]) -> Result<(), FalccError> {
    use std::io::Write;
    let io = |e: std::io::Error| FalccError::Dataset(falcc_dataset::DatasetError::Io(e));
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    rename_typed(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Without the directory fsync the rename may be lost on power
        // failure even though the file data was synced.
        std::fs::File::open(parent).and_then(|d| d.sync_all()).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_helpers_round_trip_and_reject() {
        let sealed = seal_envelope("falcc-test", 7, "payload".into()).unwrap();
        assert_eq!(open_envelope("falcc-test", 7, &sealed).unwrap(), "payload");
        assert!(matches!(
            open_envelope("falcc-other", 7, &sealed),
            Err(EnvelopeFault::Corrupt(_))
        ));
        assert!(matches!(
            open_envelope("falcc-test", 8, &sealed),
            Err(EnvelopeFault::VersionSkew(7))
        ));
        let tampered = sealed.replace("payload", "paYload");
        assert!(matches!(
            open_envelope("falcc-test", 7, &tampered),
            Err(EnvelopeFault::Corrupt(_))
        ));
    }

    #[test]
    fn cross_filesystem_rename_is_a_typed_error() {
        // Opportunistic: only meaningful when the machine has a second
        // filesystem to rename across (tmpfs at /dev/shm on most Linux
        // boxes). Sibling renames — the only ones the save path issues —
        // can never trigger this, so the helper is exercised directly.
        let shm = Path::new("/dev/shm");
        if !shm.is_dir() {
            return;
        }
        let tmp = shm.join("falcc_exdev_probe.tmp");
        if std::fs::write(&tmp, b"probe").is_err() {
            return;
        }
        let target = std::env::temp_dir().join("falcc_exdev_probe.json");
        match rename_typed(&tmp, &target) {
            Ok(()) => {
                // Same filesystem after all — nothing to assert.
                std::fs::remove_file(&target).ok();
            }
            Err(FalccError::CrossDeviceRename { path }) => {
                assert!(path.contains("falcc_exdev_probe"));
                assert!(!tmp.exists(), "temp file must be cleaned up");
            }
            Err(other) => panic!("expected CrossDeviceRename, got {other}"),
        }
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
