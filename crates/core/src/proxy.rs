//! Proxy-discrimination mitigation (paper §3.4).
//!
//! Non-protected attributes that correlate with protected ones act as
//! *proxies* and can reintroduce discrimination even when the protected
//! attribute itself is ignored. FALCC counteracts this **inline**: the
//! validation data is transformed *before clustering only* — the models
//! stay trained on the raw data and new samples keep their raw values for
//! classification, which is what distinguishes this from pre-processing.
//!
//! Two strategies from the paper:
//!
//! * **Reweighing** — every non-sensitive attribute gets the Eq. 1 weight
//!   `(1/|Sens|)·Σ_s (1 − r(s, a))`; proxies (high correlation) receive low
//!   weight, shrinking their influence on the squared-distance clustering.
//! * **Removal** — attributes with `|r| > δ` (δ = 0.5) at significance
//!   `p < 0.05` are dropped from the clustering projection entirely.

use falcc_dataset::stats::{pearson_test, proxy_weight};
use falcc_dataset::{AttrId, Dataset};

/// Mitigation strategy selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProxyStrategy {
    /// No mitigation: cluster on all non-sensitive attributes, unweighted.
    None,
    /// Eq. 1 reweighing of all non-sensitive attributes.
    Reweigh,
    /// Removal of attributes with `|r| > delta` and `p < p_threshold`.
    Remove {
        /// Correlation magnitude threshold (paper: 0.5).
        delta: f64,
        /// Significance threshold (paper: 0.05).
        p_threshold: f64,
    },
}

impl ProxyStrategy {
    /// The paper's removal configuration (δ = 0.5, p < 0.05).
    pub const PAPER_REMOVE: Self = Self::Remove { delta: 0.5, p_threshold: 0.05 };

    /// Short name for experiment output.
    pub fn short_name(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Reweigh => "reweigh",
            Self::Remove { .. } => "remove",
        }
    }

    /// Analyses `ds` and produces the attribute selection / weighting the
    /// clustering step should use. The sensitive attributes themselves are
    /// always projected out (§3.5).
    pub fn apply(&self, ds: &Dataset) -> ProxyOutcome {
        let non_sens = ds.schema().non_sensitive_attrs();
        let sens_attrs = ds.schema().sensitive_attrs();
        let sens_cols: Vec<Vec<f64>> =
            sens_attrs.iter().map(|&a| ds.column(a)).collect();
        let sens_refs: Vec<&[f64]> = sens_cols.iter().map(|c| c.as_slice()).collect();

        match *self {
            Self::None => ProxyOutcome { attrs: non_sens, weights: None, removed: Vec::new() },
            Self::Reweigh => {
                let weights: Vec<f64> = non_sens
                    .iter()
                    .map(|&a| proxy_weight(&sens_refs, &ds.column(a)))
                    .collect();
                ProxyOutcome { attrs: non_sens, weights: Some(weights), removed: Vec::new() }
            }
            Self::Remove { delta, p_threshold } => {
                let mut kept = Vec::with_capacity(non_sens.len());
                let mut removed = Vec::new();
                for &a in &non_sens {
                    let col = ds.column(a);
                    let is_proxy = sens_refs.iter().any(|s| {
                        let c = pearson_test(s, &col);
                        c.r.abs() > delta && c.p_value < p_threshold
                    });
                    if is_proxy {
                        removed.push(a);
                    } else {
                        kept.push(a);
                    }
                }
                if kept.is_empty() {
                    // Never remove everything: fall back to no removal, as
                    // clustering needs at least one dimension.
                    ProxyOutcome { attrs: non_sens, weights: None, removed: Vec::new() }
                } else {
                    falcc_telemetry::counters::PROXY_ATTRS_REMOVED.add(removed.len() as u64);
                    ProxyOutcome { attrs: kept, weights: None, removed }
                }
            }
        }
    }
}

/// The result of proxy analysis: which attributes the clustering projection
/// uses and with what weights.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProxyOutcome {
    /// Attribute ids (columns of the full-width row) to cluster on.
    pub attrs: Vec<AttrId>,
    /// Optional per-attribute weights, parallel to `attrs`.
    pub weights: Option<Vec<f64>>,
    /// Attributes flagged as proxies and removed (empty for other
    /// strategies).
    pub removed: Vec<AttrId>,
}

impl ProxyOutcome {
    /// Projects one full-width row consistently with the offline
    /// projection — the online phase's *sample processing* step (§3.7).
    pub fn project_row(&self, row: &[f64]) -> Vec<f64> {
        Dataset::project_row(row, &self.attrs, self.weights.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcc_dataset::synthetic::{generate, SyntheticConfig};

    fn implicit_ds() -> Dataset {
        let mut cfg = SyntheticConfig::implicit(0.4);
        cfg.n = 3000;
        generate(&cfg, 3).unwrap()
    }

    #[test]
    fn none_keeps_all_non_sensitive_attrs() {
        let ds = implicit_ds();
        let out = ProxyStrategy::None.apply(&ds);
        assert_eq!(out.attrs.len(), 8);
        assert!(out.weights.is_none());
        assert!(!out.attrs.contains(&0), "sensitive column projected out");
    }

    #[test]
    fn reweigh_downweights_proxies() {
        let ds = implicit_ds();
        let out = ProxyStrategy::Reweigh.apply(&ds);
        let w = out.weights.as_ref().expect("reweigh produces weights");
        assert_eq!(w.len(), 8);
        // Columns 1..=3 of the dataset are proxies (attrs list starts at
        // column 1, so weight[0..3] cover them).
        let proxy_mean = (w[0] + w[1] + w[2]) / 3.0;
        let clean_mean = w[3..].iter().sum::<f64>() / (w.len() - 3) as f64;
        assert!(
            proxy_mean < clean_mean - 0.1,
            "proxies {proxy_mean} should weigh less than clean {clean_mean}"
        );
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn remove_drops_strong_proxies_only() {
        let mut cfg = SyntheticConfig::implicit(0.4);
        cfg.n = 3000;
        // Strengthen proxies so they clear the δ = 0.5 bar.
        let ds = generate(&cfg, 3).unwrap();
        let out = ProxyStrategy::Remove { delta: 0.3, p_threshold: 0.05 }.apply(&ds);
        assert!(!out.removed.is_empty(), "proxies should be flagged");
        assert!(out.removed.iter().all(|&a| (1..=3).contains(&a)), "{:?}", out.removed);
        assert_eq!(out.attrs.len() + out.removed.len(), 8);
    }

    #[test]
    fn remove_never_empties_the_projection() {
        let ds = implicit_ds();
        // Absurd threshold flags everything → fallback keeps all.
        let out = ProxyStrategy::Remove { delta: 0.0, p_threshold: 1.1 }.apply(&ds);
        assert!(!out.attrs.is_empty());
    }

    #[test]
    fn social_dataset_has_no_proxies_to_remove() {
        let mut cfg = SyntheticConfig::social(0.3);
        cfg.n = 3000;
        let ds = generate(&cfg, 4).unwrap();
        let out = ProxyStrategy::PAPER_REMOVE.apply(&ds);
        assert!(out.removed.is_empty(), "social bias has no proxies: {:?}", out.removed);
        assert_eq!(out.attrs.len(), 8);
    }

    #[test]
    fn project_row_is_consistent_with_outcome() {
        let ds = implicit_ds();
        let out = ProxyStrategy::Reweigh.apply(&ds);
        let projected = out.project_row(ds.row(0));
        assert_eq!(projected.len(), out.attrs.len());
        let w = out.weights.as_ref().unwrap();
        for (j, (&a, &wa)) in out.attrs.iter().zip(w).enumerate() {
            assert!((projected[j] - ds.row(0)[a] * wa).abs() < 1e-12);
        }
    }
}
