//! The offline monitor baseline: what the fitted model *actually saw*.
//!
//! Live drift monitoring (PR: serving observability) compares online
//! traffic against the validation data that carved the regions — per-region
//! occupancy, per-region group mix, and the training-time demographic-parity
//! gap of the chosen combinations. [`MonitorBaseline`] captures those three
//! vectors at fit time, travels inside the persisted snapshot (so a restored
//! model monitors against what *it* was fitted on, not a re-derivation), and
//! converts into a [`falcc_telemetry::MonitorSpec`] when a monitor is
//! installed.

use falcc_clustering::KMeansModel;
use falcc_dataset::{Dataset, GroupId};
use falcc_metrics::FairnessMetric;
use serde::{Deserialize, Serialize};

/// Default rows per monitor window when the caller does not choose one.
pub const DEFAULT_WINDOW_LEN: u64 = 256;

/// Default number of retained ring windows.
pub const DEFAULT_WINDOWS: usize = 64;

/// Per-region reference statistics from the offline phase, persisted with
/// the model so serve-time drift is measured against the validation data
/// the regions were carved from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorBaseline {
    /// Local regions (clusters) at fit time.
    pub n_regions: usize,
    /// Sensitive groups at fit time.
    pub n_groups: usize,
    /// Fraction of validation rows per region (sums to 1).
    pub occupancy: Vec<f64>,
    /// Group mix per region, region-major `[r * n_groups + g]` (each
    /// non-empty region's row sums to 1).
    pub group_mix: Vec<f64>,
    /// Training-time demographic-parity gap of each region's chosen
    /// combination, evaluated on that region's validation members.
    pub dp: Vec<f64>,
}

impl MonitorBaseline {
    /// Derives the baseline at the end of the offline phase, from the raw
    /// k-means membership (no gap filling, no fault injection — the
    /// occupancy an online nearest-centroid match would reproduce on the
    /// validation set) and the *resolved* combinations.
    pub(crate) fn compute(
        kmeans: &KMeansModel,
        validation: &Dataset,
        preds: &[Vec<u8>],
        combos: &[Vec<usize>],
        n_groups: usize,
    ) -> Self {
        let members = kmeans.cluster_members();
        let n_regions = kmeans.k();
        let total = validation.len().max(1) as f64;
        let mut occupancy = vec![0.0; n_regions];
        let mut group_mix = vec![0.0; n_regions * n_groups];
        let mut dp = vec![0.0; n_regions];
        for (r, rows) in members.iter().enumerate() {
            occupancy[r] = rows.len() as f64 / total;
            if rows.is_empty() {
                continue;
            }
            let y: Vec<u8> = rows.iter().map(|&i| validation.label(i)).collect();
            let g: Vec<GroupId> = rows.iter().map(|&i| validation.group(i)).collect();
            let z: Vec<u8> = rows
                .iter()
                .zip(&g)
                .map(|(&i, gi)| preds[combos[r][gi.index()]][i])
                .collect();
            let mut counts = vec![0u64; n_groups];
            for gi in &g {
                counts[gi.index()] += 1;
            }
            for (gidx, &c) in counts.iter().enumerate() {
                group_mix[r * n_groups + gidx] = c as f64 / rows.len() as f64;
            }
            dp[r] = FairnessMetric::DemographicParity.bias(&y, &z, &g, n_groups);
        }
        Self { n_regions, n_groups, occupancy, group_mix, dp }
    }

    /// Builds the telemetry-side monitor configuration around this
    /// baseline. `window_len` is rows per window, `windows` the ring size
    /// (see [`DEFAULT_WINDOW_LEN`] / [`DEFAULT_WINDOWS`]).
    pub fn spec(&self, window_len: u64, windows: usize) -> falcc_telemetry::MonitorSpec {
        falcc_telemetry::MonitorSpec {
            window_len,
            windows,
            n_regions: self.n_regions,
            n_groups: self.n_groups,
            baseline_occupancy: self.occupancy.clone(),
            baseline_group_mix: self.group_mix.clone(),
            baseline_dp: self.dp.clone(),
        }
    }
}
