//! Compiled-vs-interpreted equivalence suite.
//!
//! The compiled serving plane (`FalccModel::compile`) promises *bit
//! identity* with the interpreted online phase: for any fitted model and
//! any input — valid, malformed, or fault-injected — every entry point
//! returns exactly the same `Result<u8, RowFault>` sequence, at every
//! thread count. This suite pins that promise over randomised pools,
//! region counts, rows, and batch compositions.

use std::sync::OnceLock;

use falcc::{ClusterSpec, FairClassifier, FalccConfig, FalccModel, FaultPlan};
use falcc_dataset::synthetic::{generate, SyntheticConfig};
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_models::{ModelPool, PoolConfig, TrainerKind};

/// Thread counts to exercise (CI additionally pins `FALCC_TEST_THREADS`).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn split_of(n: usize, seed: u64) -> ThreeWaySplit {
    let mut dcfg = SyntheticConfig::social(0.3);
    dcfg.n = n;
    let ds = generate(&dcfg, seed).expect("generate");
    ThreeWaySplit::split(&ds, SplitRatios::PAPER, seed).expect("split")
}

fn config(seed: u64, k: usize, trainer: TrainerKind, pool_size: usize) -> FalccConfig {
    FalccConfig {
        clustering: ClusterSpec::FixedK(k),
        pool: PoolConfig { trainer, pool_size, ..Default::default() },
        seed,
        ..FalccConfig::default()
    }
}

/// Fitted fixtures spanning the model-family and region-count space:
/// boosted and bagged grid pools at different `k`, plus the
/// `standard_five` pool (tree, AdaBoost, logistic, Bayes, kNN) so every
/// flat member kind — including the kNN/opaque fallback — serves rows.
fn fixtures() -> &'static Vec<(FalccModel, ThreeWaySplit)> {
    static FIXTURES: OnceLock<Vec<(FalccModel, ThreeWaySplit)>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let mut out = Vec::new();
        for (seed, k, trainer, pool_size) in [
            (41u64, 4usize, TrainerKind::AdaBoost, 3usize),
            (42, 2, TrainerKind::RandomForest, 4),
            (43, 6, TrainerKind::AdaBoost, 0), // whole grid
        ] {
            let split = split_of(900, seed);
            let cfg = config(seed, k, trainer, pool_size);
            let model =
                FalccModel::fit(&split.train, &split.validation, &cfg).expect("fit");
            out.push((model, split));
        }
        // All five model families through fit_with_pool.
        let split = split_of(900, 44);
        let pool = ModelPool::standard_five(&split.train, 44);
        let cfg = config(44, 3, TrainerKind::AdaBoost, 0);
        let model = FalccModel::fit_with_pool(&split.validation, pool, &cfg)
            .expect("fit_with_pool");
        out.push((model, split));
        out
    })
}

/// A batch interleaving valid test rows with every malformed-row kind.
fn mixed_batch(split: &ThreeWaySplit, n_valid: usize) -> Vec<Vec<f64>> {
    let width = split.test.row(0).len();
    let mut rows: Vec<Vec<f64>> =
        (0..n_valid).map(|i| split.test.row(i % split.test.len()).to_vec()).collect();
    let mut nan_row = split.test.row(0).to_vec();
    nan_row[width - 1] = f64::NAN;
    let mut inf_row = split.test.row(1).to_vec();
    inf_row[0] = f64::NEG_INFINITY;
    let mut alien = split.test.row(2).to_vec();
    alien[0] = 42.0; // sensitive attribute outside {0, 1}
    let mut wide = split.test.row(3).to_vec();
    wide.push(0.5);
    for (slot, bad) in
        [(2usize, nan_row), (5, inf_row), (7, alien), (11, vec![1.0]), (13, wide)]
    {
        if slot < rows.len() {
            rows[slot] = bad;
        } else {
            rows.push(bad);
        }
    }
    rows
}

#[test]
fn batches_with_malformed_rows_are_identical_at_all_thread_counts() {
    let env_threads: Option<usize> =
        std::env::var("FALCC_TEST_THREADS").ok().and_then(|v| v.parse().ok());
    for (fixture_idx, (model, split)) in fixtures().iter().enumerate() {
        let rows = mixed_batch(split, 40);
        let mut model = model.clone();
        let mut reference = None;
        for threads in THREAD_COUNTS.into_iter().chain(env_threads) {
            model.set_threads(threads);
            let interpreted = model.classify_batch(&rows);
            let compiled = model.compile();
            let served = compiled.classify_batch(&rows);
            assert_eq!(
                interpreted, served,
                "fixture {fixture_idx}: compiled batch diverged at {threads} threads"
            );
            match &reference {
                None => reference = Some(served),
                Some(r) => assert_eq!(
                    r, &served,
                    "fixture {fixture_idx}: thread count {threads} changed results"
                ),
            }
        }
    }
}

#[test]
fn single_row_path_is_identical_for_every_fixture() {
    for (fixture_idx, (model, split)) in fixtures().iter().enumerate() {
        let compiled = model.compile();
        for i in 0..split.test.len().min(200) {
            let row = split.test.row(i);
            assert_eq!(
                model.try_classify(row),
                compiled.try_classify(row),
                "fixture {fixture_idx} row {i}"
            );
        }
        for bad in mixed_batch(split, 3) {
            assert_eq!(model.try_classify(&bad), compiled.try_classify(&bad));
        }
    }
}

#[test]
fn predict_dataset_override_is_identical() {
    for (fixture_idx, (model, split)) in fixtures().iter().enumerate() {
        let compiled = model.compile();
        assert_eq!(
            model.predict_dataset(&split.test),
            compiled.predict_dataset(&split.test),
            "fixture {fixture_idx}"
        );
    }
}

#[test]
fn injected_fault_plans_degrade_identically() {
    let (model, split) = &fixtures()[0];
    let mut model = model.clone();
    let mut plan = FaultPlan::default();
    plan.poison_row(1).poison_row(6);
    model.set_fault_plan(plan);
    let rows = mixed_batch(split, 12);
    let compiled = model.compile();
    let interpreted = model.classify_batch(&rows);
    let served = compiled.classify_batch(&rows);
    assert!(interpreted[1].is_err() && interpreted[6].is_err());
    assert_eq!(interpreted, served);
}

/// The binary artifact round trip (`CompiledModel -> artifact bytes ->
/// CompiledModelBuf::load`) must reproduce the fresh `compile()` plane
/// bit-for-bit: identical `Result<u8, RowFault>` sequences on mixed
/// valid/malformed batches at every thread count, for every fixture —
/// including the kNN-delegating `standard_five` pool, whose opaque
/// members travel as specs in the metadata section.
#[test]
fn artifact_round_trip_serves_identically_at_all_thread_counts() {
    let env_threads: Option<usize> =
        std::env::var("FALCC_TEST_THREADS").ok().and_then(|v| v.parse().ok());
    for (fixture_idx, (model, split)) in fixtures().iter().enumerate() {
        let rows = mixed_batch(split, 40);
        let compiled = model.compile();
        let bytes =
            compiled.to_artifact_bytes(0xf1f0 + fixture_idx as u64).expect("serialise");
        let buf = falcc::CompiledModelBuf::from_bytes(bytes).expect("validate");
        // One read-only buffer serves any number of replicas.
        let mut loaded = buf.load_if_fresh(0xf1f0 + fixture_idx as u64).expect("load");
        let replica = buf.load().expect("second load from the same buffer");
        assert_eq!(
            replica.classify_batch(&rows),
            loaded.classify_batch(&rows),
            "fixture {fixture_idx}: replicas from one buffer diverged"
        );
        let mut compiled = compiled;
        for threads in THREAD_COUNTS.into_iter().chain(env_threads) {
            compiled.set_threads(threads);
            loaded.set_threads(threads);
            assert_eq!(
                compiled.classify_batch(&rows),
                loaded.classify_batch(&rows),
                "fixture {fixture_idx}: artifact plane diverged at {threads} threads"
            );
        }
        assert_eq!(
            compiled.predict_dataset(&split.test),
            loaded.predict_dataset(&split.test),
            "fixture {fixture_idx}: dataset override diverged"
        );
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    // Random fixture, random batch composition (valid rows drawn from
    // anywhere in the test split, malformed rows interleaved at random
    // positions with random poison kinds), random thread count: the
    // compiled plane must emit the identical Result sequence, and each
    // row's verdict must equal the single-row paths of both planes.
    #[test]
    fn random_batches_serve_identically(
        fixture_idx in 0usize..4,
        start in 0usize..500,
        len in 1usize..48,
        poison_at in 0usize..48,
        poison_kind in 0u8..5,
        threads_idx in 0usize..3,
    ) {
        let (model, split) = &fixtures()[fixture_idx];
        let mut model = model.clone();
        model.set_threads(THREAD_COUNTS[threads_idx]);
        let mut rows: Vec<Vec<f64>> = (0..len)
            .map(|i| split.test.row((start + i) % split.test.len()).to_vec())
            .collect();
        if poison_at < rows.len() {
            let width = rows[poison_at].len();
            match poison_kind {
                0 => rows[poison_at][width / 2] = f64::NAN,
                1 => rows[poison_at][width - 1] = f64::INFINITY,
                2 => rows[poison_at][0] = 9.0, // out-of-domain sensitive
                3 => rows[poison_at] = vec![0.25; 2],
                _ => {} // leave the batch fully valid
            }
        }
        let compiled = model.compile();
        let interpreted = model.classify_batch(&rows);
        let served = compiled.classify_batch(&rows);
        proptest::prop_assert_eq!(&interpreted, &served);
        // The persisted-artifact plane is the same plane: load from the
        // fixture's shared buffer and demand the identical sequence.
        let mut loaded = artifact_buffers()[fixture_idx].load().expect("artifact load");
        loaded.set_threads(THREAD_COUNTS[threads_idx]);
        proptest::prop_assert_eq!(&interpreted, &loaded.classify_batch(&rows));
        for (i, row) in rows.iter().enumerate() {
            let single_interpreted = model.try_classify(row);
            let single_compiled = compiled.try_classify(row);
            proptest::prop_assert_eq!(&single_interpreted, &single_compiled);
            proptest::prop_assert_eq!(&single_interpreted, &loaded.try_classify(row));
            proptest::prop_assert_eq!(&interpreted[i], &single_interpreted, "row {}", i);
        }
    }
}

/// One validated artifact buffer per fixture, shared across proptest
/// cases the way replicas would share it in production.
fn artifact_buffers() -> &'static Vec<falcc::CompiledModelBuf> {
    static BUFFERS: OnceLock<Vec<falcc::CompiledModelBuf>> = OnceLock::new();
    BUFFERS.get_or_init(|| {
        fixtures()
            .iter()
            .map(|(model, _)| {
                let bytes = model.compile().to_artifact_bytes(0).expect("serialise");
                falcc::CompiledModelBuf::from_bytes(bytes).expect("validate")
            })
            .collect()
    })
}
