//! Credit scoring: compare FALCC with Decouple and FaX on the Credit Card
//! Clients dataset (emulated; §4.1.1 of the paper), reporting the full
//! quality profile — accuracy plus global, local, and individual bias.
//!
//! ```sh
//! cargo run --release --example credit_scoring
//! ```

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_baselines::{Decouple, Fax, FaxParams};
use falcc_clustering::{KMeans};
use falcc_dataset::real;
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::individual::consistency;
use falcc_metrics::{accuracy, local_bias, FairnessMetric, LossConfig};
use falcc_models::ModelPool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10%-scale emulation keeps the example under a minute.
    let data = real::credit_card().generate(3, 0.10)?;
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 3)?;
    let metric = FairnessMetric::DemographicParity;
    println!(
        "Credit Card Clients (emulated): {} applicants, protected attribute `sex`",
        data.len()
    );

    // Shared evaluation regions so local bias is comparable: k-means over
    // the non-sensitive features of the test split.
    let attrs = split.test.schema().non_sensitive_attrs();
    let projected = split.test.project(&attrs, None);
    let km = KMeans::new(8, 3).fit(&projected);
    let regions = km.assignments.clone();

    let falcc = FalccModel::fit(&split.train, &split.validation, &FalccConfig::default())?;
    let decouple = Decouple::fit(
        ModelPool::standard_five(&split.train, 3),
        &split.validation,
        LossConfig::balanced(metric),
    )?;
    let fax = Fax::fit(&split.train, &FaxParams::default(), 3);

    println!(
        "\n{:<12} {:>9} {:>12} {:>11} {:>12}",
        "algorithm", "accuracy", "global bias", "local bias", "indiv. bias"
    );
    let contenders: [&dyn FairClassifier; 3] = [&falcc, &decouple, &fax];
    for model in contenders {
        let preds = model.predict_dataset(&split.test);
        let y = split.test.labels();
        let g = split.test.groups();
        let acc = accuracy(y, &preds);
        let global = metric.bias(y, &preds, g, 2);
        let local = local_bias(metric, y, &preds, g, 2, &regions, km.k());
        let indiv = 1.0 - consistency(&projected, &preds, 5);
        println!(
            "{:<12} {:>8.1}% {:>11.2}% {:>10.2}% {:>11.2}%",
            model.name(),
            acc * 100.0,
            global * 100.0,
            local * 100.0,
            indiv * 100.0
        );
    }

    println!(
        "\nNote: lower bias is better. FALCC targets the *local* column without\n\
         giving up accuracy; Decouple optimises the global column only; FaX\n\
         excels at the individual column (cf. paper §4.2)."
    );
    Ok(())
}
