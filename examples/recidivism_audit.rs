//! Recidivism audit: fit FALCC on the COMPAS dataset (emulated) and audit
//! it the way a fairness review would — per-region bias breakdown, all four
//! Tab. 3 metrics, and online latency.
//!
//! ```sh
//! cargo run --release --example recidivism_audit
//! ```

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::real;
use falcc_dataset::{SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, FairnessMetric};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = real::compas().generate(5, 1.0)?; // COMPAS is small: full scale
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 5)?;
    println!(
        "COMPAS (emulated): {} defendants, protected attribute `race`",
        data.len()
    );

    let model = FalccModel::fit(&split.train, &split.validation, &FalccConfig::default())?;
    println!(
        "FALCC fitted: {} models in the pool, {} local regions\n",
        model.pool().len(),
        model.n_regions()
    );

    // Online latency — the paper's Fig. 6 claim, observable here directly.
    let start = Instant::now();
    let preds = model.predict_dataset(&split.test);
    let per_sample = start.elapsed().as_micros() as f64 / split.test.len() as f64;
    println!(
        "online phase: {} samples in {:.1} µs/sample",
        split.test.len(),
        per_sample
    );

    // Global audit across all four Tab. 3 metrics.
    let y = split.test.labels();
    let g = split.test.groups();
    println!("\n== global audit ==");
    println!("accuracy: {:.1}%", accuracy(y, &preds) * 100.0);
    for metric in FairnessMetric::ALL {
        println!(
            "{:<22} {:.2}%",
            format!("{metric}:"),
            metric.bias(y, &preds, g, 2) * 100.0
        );
    }

    // Per-region audit: the local-fairness view. Regions are FALCC's own
    // clusters, so this is exactly what the offline phase optimised.
    println!("\n== per-region audit (demographic parity) ==");
    let regions: Vec<usize> =
        (0..split.test.len()).map(|i| model.assign_region(split.test.row(i))).collect();
    println!("{:<8} {:>7} {:>10} {:>9}", "region", "size", "accuracy", "dp bias");
    for r in 0..model.n_regions() {
        let idx: Vec<usize> = (0..split.test.len()).filter(|&i| regions[i] == r).collect();
        if idx.is_empty() {
            continue;
        }
        let yr: Vec<u8> = idx.iter().map(|&i| y[i]).collect();
        let zr: Vec<u8> = idx.iter().map(|&i| preds[i]).collect();
        let gr: Vec<_> = idx.iter().map(|&i| g[i]).collect();
        println!(
            "C{:<7} {:>7} {:>9.1}% {:>8.2}%",
            r + 1,
            idx.len(),
            accuracy(&yr, &zr) * 100.0,
            FairnessMetric::DemographicParity.bias(&yr, &zr, &gr, 2) * 100.0
        );
    }

    println!(
        "\nReading: a region with high dp bias treats similar defendants of\n\
         different races differently — the pattern Fig. 1 of the paper warns\n\
         about even when the global numbers look fair."
    );
    Ok(())
}
