#![allow(clippy::field_reassign_with_default)] // config mutation reads clearer in examples

//! Framework generality and auto-configuration: run FALCC in three of the
//! modes its framework unifies (paper §3.1's claim that global, local, and
//! individual fairness are all configurations of one system), then let the
//! auto-tuner pick the configuration (paper §5's future-work direction).
//!
//! ```sh
//! cargo run --release --example auto_tuning
//! ```

use falcc::{auto_tune, ClusterSpec, FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
use falcc_metrics::individual::consistency;
use falcc_metrics::{accuracy, FairnessMetric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = synthetic::implicit30(21)?;
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 21)?;
    let metric = FairnessMetric::DemographicParity;

    let report = |label: &str, model: &FalccModel| {
        let preds = model.predict_dataset(&split.test);
        let y = split.test.labels();
        let g = split.test.groups();
        let attrs = split.test.schema().non_sensitive_attrs();
        let projected = split.test.project(&attrs, None);
        println!(
            "{label:<28} regions={:<3} accuracy={:.1}%  dp bias={:.2}%  consistency={:.1}%",
            model.n_regions(),
            accuracy(y, &preds) * 100.0,
            metric.bias(y, &preds, g, 2) * 100.0,
            consistency(&projected, &preds, 5) * 100.0
        );
    };

    // 1. Global fairness: one region is Decouple-style global selection.
    let mut global_cfg = FalccConfig::default();
    global_cfg.clustering = ClusterSpec::FixedK(1);
    let global = FalccModel::fit(&split.train, &split.validation, &global_cfg)?;
    report("global mode (k = 1)", &global);

    // 2. Local fairness: the paper's default.
    let local_cfg = FalccConfig::default();
    let local = FalccModel::fit(&split.train, &split.validation, &local_cfg)?;
    report("local mode (LOG-Means)", &local);

    // 3. Individual fairness: consistency-driven assessment within
    //    clusters (§3.6, "clusters as substitutes for kNN").
    let mut individual_cfg = FalccConfig::default();
    individual_cfg.individual_assessment_k = Some(5);
    let individual = FalccModel::fit(&split.train, &split.validation, &individual_cfg)?;
    report("individual mode (k-NN = 5)", &individual);

    // 4. Auto-tuning: search clustering policy × pool size on a held-out
    //    slice of the validation data.
    println!("\nauto-tuning (9 candidate configurations)…");
    let tuned = auto_tune(&split.train, &split.validation, &FalccConfig::default())?;
    for trial in tuned.trials.iter().take(3) {
        println!(
            "  {:<44} holdout local L-hat = {:.4}",
            trial.description, trial.holdout_local_l_hat
        );
    }
    let best = FalccModel::fit(&split.train, &split.validation, &tuned.chosen)?;
    report("auto-tuned", &best);
    Ok(())
}
