//! The paper's running example (§3.2): deciding employee raises.
//!
//! A company predicts who gets a raise. `gender` is protected; `sickLeave`
//! correlates with gender and acts as a proxy. This example walks through
//! every FALCC component on generated "employee" data and then classifies
//! a new employee, mirroring Examples 3.1–3.5 of the paper.
//!
//! ```sh
//! cargo run --release --example employee_raises
//! ```

use falcc::{ClusterSpec, FairClassifier, FalccConfig, FalccModel, ProxyStrategy};
use falcc_dataset::{Dataset, Schema, SplitRatios, ThreeWaySplit};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generates an employee table: gender (protected), sickLeave (proxy for
/// gender), mgt flag, dept code, experience years — with raises biased
/// against gender = 1 exactly as in the paper's Tab. 2 narrative.
fn employee_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::with_binary_sensitive(
        vec![
            "gender".into(),
            "sickLeave".into(),
            "mgt".into(),
            "dept".into(),
            "experience".into(),
        ],
        0,
        "raise",
    )
    .expect("schema");
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let gender = u8::from(rng.gen_bool(0.5)) as f64;
        // sickLeave tracks gender (the proxy): group 1 records more days.
        let sick_leave = (0.3 + 0.4 * gender + rng.gen_range(-0.25f64..0.25)).clamp(0.0, 1.0);
        let mgt = u8::from(rng.gen_bool(0.25)) as f64;
        let dept = rng.gen_range(0..10) as f64;
        let experience = rng.gen_range(0.0..30.0);
        // Merit score: experience and management matter.
        let merit = experience / 30.0 + 0.5 * mgt + rng.gen_range(-0.2..0.2);
        // Historic bias: group 1 needed a visibly higher bar for a raise.
        let threshold = 0.55 + 0.25 * gender;
        labels.push(u8::from(merit > threshold));
        rows.push(vec![gender, sick_leave, mgt, dept, experience]);
    }
    Dataset::from_rows(schema, rows, labels).expect("employee data")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = employee_dataset(6000, 7);
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 7)?;
    let rates = data.group_positive_rates();
    println!("== the company's raise history ==");
    println!(
        "raise rate, favored group g_f:      {:.1}%",
        rates[0].unwrap_or(0.0) * 100.0
    );
    println!(
        "raise rate, discriminated group g_d: {:.1}%",
        rates[1].unwrap_or(0.0) * 100.0
    );

    // Example 3.2: proxy detection should flag sickLeave.
    let outcome = ProxyStrategy::PAPER_REMOVE.apply(&split.validation);
    println!("\n== proxy discrimination mitigation (Example 3.2) ==");
    for &a in &outcome.removed {
        println!(
            "flagged proxy attribute: {:?} (removed from the clustering projection)",
            split.validation.schema().attr_name(a)
        );
    }
    if outcome.removed.is_empty() {
        println!("no attribute cleared the removal threshold on this split");
    }

    // Examples 3.1 + 3.3 + 3.4: full offline phase.
    let config = FalccConfig {
        proxy: ProxyStrategy::PAPER_REMOVE,
        clustering: ClusterSpec::FixedK(2), // the example's two clusters
        ..FalccConfig::default()
    };
    let model = FalccModel::fit(&split.train, &split.validation, &config)?;
    println!("\n== offline phase (Examples 3.1, 3.3, 3.4) ==");
    println!("trained model pool M: {} diverse models", model.pool().len());
    for c in 0..model.n_regions() {
        let combo = model.combo(c);
        println!(
            "cluster C{}: best combination = {{(m{}, g_f), (m{}, g_d)}}",
            c + 1,
            combo[0],
            combo[1]
        );
    }

    // Example 3.5: classify new employee t (group g_d) and a very similar
    // colleague t' from g_f.
    println!("\n== online phase (Example 3.5) ==");
    let t = [1.0, 0.45, 0.0, 3.0, 18.0]; // eid=0 of Tab. 2: g_d
    let t_prime = [0.0, 0.45, 0.0, 3.0, 18.0]; // same person, other group
    let cluster = model.assign_region(&t);
    let decision = model.predict_row(&t);
    let decision_prime = model.predict_row(&t_prime);
    println!("new employee t  (g_d): matched to cluster C{}", cluster + 1);
    println!(
        "  model used: m{} → raise: {}",
        model.combo(cluster)[1],
        if decision == 1 { "YES" } else { "no" }
    );
    println!(
        "colleague t' (g_f, identical otherwise): model m{} → raise: {}",
        model.combo(model.assign_region(&t_prime))[0],
        if decision_prime == 1 { "YES" } else { "no" }
    );

    // And the big picture: how fair are the model's decisions overall?
    let preds = model.predict_dataset(&split.test);
    let bias = falcc_metrics::FairnessMetric::DemographicParity.bias(
        split.test.labels(),
        &preds,
        split.test.groups(),
        2,
    );
    let acc = falcc_metrics::accuracy(split.test.labels(), &preds);
    println!("\n== outcome on the held-out employees ==");
    println!("accuracy {:.1}%, demographic-parity bias {:.1}%", acc * 100.0, bias * 100.0);
    Ok(())
}
