//! Quickstart: train FALCC on a synthetic biased dataset and classify the
//! held-out split.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use falcc::{FairClassifier, FalccConfig, FalccModel};
use falcc_dataset::{synthetic, SplitRatios, ThreeWaySplit};
use falcc_metrics::{accuracy, local_bias, FairnessMetric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: the paper's social30 generator — 14k samples whose labels
    //    carry a 30-point demographic-parity gap against group s=1.
    let data = synthetic::social30(42)?;
    println!(
        "dataset: {} samples, {} attributes, {} sensitive groups",
        data.len(),
        data.n_attrs(),
        data.group_index().len()
    );

    // 2. The paper's 50/35/15 split.
    let split = ThreeWaySplit::split(&data, SplitRatios::PAPER, 42)?;

    // 3. Offline phase: diverse model training, clustering into local
    //    regions, per-region model assessment. Defaults follow the paper
    //    (demographic parity, λ = 0.5, LOG-Means, gap-fill k = 15).
    let config = FalccConfig::default();
    let model = FalccModel::fit(&split.train, &split.validation, &config)?;
    println!(
        "offline phase done: pool of {} models, {} local regions",
        model.pool().len(),
        model.n_regions()
    );

    // 4. Online phase: nearest-centroid lookup + one model call per sample.
    let preds = model.predict_dataset(&split.test);

    // 5. Quality report.
    let y = split.test.labels();
    let g = split.test.groups();
    let acc = accuracy(y, &preds);
    let global = FairnessMetric::DemographicParity.bias(y, &preds, g, 2);
    let regions: Vec<usize> =
        (0..split.test.len()).map(|i| model.assign_region(split.test.row(i))).collect();
    let local = local_bias(
        FairnessMetric::DemographicParity,
        y,
        &preds,
        g,
        2,
        &regions,
        model.n_regions(),
    );
    let label_gap = FairnessMetric::DemographicParity.bias(y, y, g, 2);

    println!("accuracy:            {:.1}%", acc * 100.0);
    println!("label parity gap:    {:.1}% (the bias baked into the data)", label_gap * 100.0);
    println!("prediction bias:     {:.1}% (global demographic parity)", global * 100.0);
    println!("local bias:          {:.1}% (over FALCC's own regions)", local * 100.0);
    Ok(())
}
