//! Root helper crate for the FALCC reproduction: shared glue used by the
//! runnable examples and the cross-crate integration tests. The actual
//! library surface lives in the `crates/` workspace members.

/// Re-export of the workspace crates so examples can `use falcc_repro::*`.
pub use falcc;
pub use falcc_baselines;
pub use falcc_clustering;
pub use falcc_dataset;
pub use falcc_metrics;
pub use falcc_models;
