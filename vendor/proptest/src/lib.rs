//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace's property suites use: range strategies over numeric
//! types, tuple composition, `prop_map`/`prop_flat_map`, collection
//! generation, and `prop_assert!`/`prop_assert_eq!`. Case generation is
//! fully deterministic (seeded from the test name), so failures
//! reproduce across runs and machines. Shrinking is not implemented —
//! the reported counterexample is the raw failing input.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Discards generated values failing `f`, retrying a bounded
        /// number of times.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { source: self, whence, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn gen_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive inputs", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $unsigned:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                    self.start.wrapping_add((rng.next_u64() % (span as u64)) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    let v = self.start + (self.end - self.start) * unit;
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    lo + (hi - lo) * unit
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// A strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner.

    /// Failure of one property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// What went wrong.
        pub message: String,
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-case result: `Err` fails the property.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The runner's RNG: SplitMix64, seeded from the test name so every
    /// run of a given property sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic construction from an arbitrary label.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

/// Declares deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                    )*
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| -> $crate::test_runner::TestCaseResult { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 5usize..20, f in -1.0f64..1.0, b in 0u8..=1) {
            prop_assert!((5..20).contains(&n));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(b <= 1);
        }

        #[test]
        fn flat_map_builds_dependent_sizes(v in (1usize..8).prop_flat_map(|n| {
            collection::vec(0i32..100, n).prop_map(move |v| (n, v))
        })) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn early_return_is_supported(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing(n in 0usize..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        failing();
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1000, collection::vec(-1.0f64..1.0, 3usize));
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }
}
