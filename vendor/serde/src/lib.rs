//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the serialisation surface the workspace actually uses: a JSON-shaped
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits over it,
//! and derive macros (re-exported from the companion `serde_derive`
//! proc-macro crate) covering plain structs, tuple structs, and enums
//! with unit/tuple/struct variants. The `serde_json` stand-in renders
//! [`Value`] to JSON text and parses it back.
//!
//! The wire format follows real serde's conventions (externally tagged
//! enums, transparent newtypes), so snapshots look like what upstream
//! serde_json would emit.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the data model every [`Serialize`]
/// implementation renders into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved so output is
    /// deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Deserialisation failure: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    /// Human-readable description.
    pub detail: String,
}

impl DeError {
    /// A "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self { detail: format!("expected {what}, found {kind}") }
    }

    /// A free-form error.
    pub fn custom(detail: impl Into<String>) -> Self {
        Self { detail: detail.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-model form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `v`.
    ///
    /// # Errors
    /// [`DeError`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::I64(i) => u64::try_from(*i)
                        .map_err(|_| DeError::custom("negative integer"))?,
                    Value::U64(u) => *u,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // JSON has no NaN/∞; serde_json writes null, so do we.
                if self.is_finite() {
                    Value::F64(*self as f64)
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items.try_into().map_err(|_| {
            DeError::custom(format!("expected array of length {N}, found {n}"))
        })
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            Option::<f64>::from_value(&None::<f64>.to_value()).unwrap(),
            None
        );
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [vec![1u8], vec![2, 3]];
        assert_eq!(<[Vec<u8>; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(bool::from_value(&Value::I64(1)).is_err());
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u8::from_value(&Value::I64(-1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
