//! Offline stand-in for `serde_json`: compact JSON rendering and a
//! recursive-descent parser over the `serde` stand-in's [`Value`] model.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone)]
pub struct Error {
    detail: String,
}

impl Error {
    fn new(detail: impl Into<String>) -> Self {
        Self { detail: detail.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for Error {}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` to a compact JSON string.
///
/// # Errors
/// Never fails for values produced by the stand-in's `Serialize` impls;
/// the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a `T` from JSON text.
///
/// # Errors
/// Malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.detail))
}

/// Parses JSON text into a dynamic [`Value`].
///
/// # Errors
/// Malformed JSON.
pub fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` produces the shortest round-trippable repr and
                // keeps a ".0" on integral floats, so the parser reads
                // them back as floats.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error::new("unexpected end of input"));
    };
    match b {
        b'n' => expect(bytes, pos, "null").map(|()| Value::Null),
        b't' => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(Error::new(format!(
            "unexpected byte `{}` at {}",
            other as char, *pos
        ))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::new("unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("non-UTF8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape `\\{}`",
                            other as char
                        )))
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                let len = utf8_len(b);
                let chunk = bytes
                    .get(start..start + len)
                    .ok_or_else(|| Error::new("truncated UTF-8"))?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number"))?;
    if is_float {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else if let Ok(i) = text.parse::<i64>() {
        Ok(Value::I64(i))
    } else if let Ok(u) = text.parse::<u64>() {
        Ok(Value::U64(u))
    } else {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "1", "-7", "2.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn integral_floats_keep_their_point() {
        let v = Value::F64(3.0);
        let json = to_string(&v).unwrap();
        assert_eq!(json, "3.0");
        assert_eq!(parse_value(&json).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#;
        let v = parse_value(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u32, Option<f64>)> = vec![(1, Some(0.5)), (2, None)];
        let json = to_string(&data).unwrap();
        let back: Vec<(u32, Option<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<u8>("\"x\"").is_err());
    }
}
