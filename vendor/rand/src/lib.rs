//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of `rand`'s API it actually uses: seedable
//! deterministic generators (`StdRng`, `SmallRng`), uniform range and
//! Bernoulli sampling via [`Rng`], and Fisher–Yates shuffling via
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically strong, fully deterministic per seed, and
//! `Send + Sync` friendly. The numeric streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, which only matters to tests pinning
//! exact values (none do; the suite asserts statistical properties).

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// SplitMix64 exactly like upstream `rand`'s helper.
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s);
            for (b, byte) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleRange` this workspace needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Modulo reduction. The modulo bias is `span / 2^64` — immaterial for
/// the spans this workspace samples (dataset sizes, grid indices).
#[inline]
fn reduce_u64(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    word % span
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The deterministic generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is an absorbing fixed point for xoshiro.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    /// Alias — this stand-in has no cheaper generator worth switching to.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence sampling helpers.

    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, identical order for identical seeds.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0u8..=1);
            assert!(i <= 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(counts.iter().all(|&c| (800..1200).contains(&c)), "{counts:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
