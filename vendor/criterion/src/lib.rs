//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) backed by a
//! plain wall-clock harness: warm-up, then `sample_size` timed samples,
//! reporting min/mean/max per iteration. No statistical analysis, HTML
//! reports, or regression detection — just honest timings, offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{parameter}", name.into()) }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Passed to the benchmark closure; runs the measured code.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so each
    /// sample runs long enough to measure, then recording samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes ≥ 1 ms (or a single iteration is already slow).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, b: &Bencher) {
    if b.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let per_iter = |d: &Duration| d.as_secs_f64() / b.iters_per_sample as f64;
    let mut times: Vec<f64> = b.samples.iter().map(per_iter).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{label:<50} [{} {} {}]",
        fmt_time(times[0]),
        fmt_time(mean),
        fmt_time(times[times.len() - 1]),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is already done per-bench).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&id.label, &b);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        group.finish();
    }
}
