//! Derive macros for the offline `serde` stand-in.
//!
//! Supports the shapes this workspace serialises: structs with named
//! fields, tuple structs, and enums whose variants are unit, tuple, or
//! struct-like. Generics and `#[serde(...)]` attributes are not
//! supported — the workspace uses neither. The macros parse the item's
//! token stream directly (the offline environment has no syn/quote) and
//! emit impl blocks for `serde::Serialize` / `serde::Deserialize` in
//! real serde's externally-tagged wire format.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one item declaration parses into.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Skips leading `#[...]` attribute pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility marker starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level commas in a type list, tracking `<...>` nesting
/// (angle brackets are plain puncts in a token stream, unlike `()`/`[]`
/// groups which already nest).
fn count_toplevel_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    commas + usize::from(!trailing_comma)
}

/// Extracts the field names of a named-field body (brace-group tokens).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found `{other}`"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(count_toplevel_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Struct(parse_named_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the offline stand-in");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::NamedStruct { name, fields: parse_named_fields(&inner) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct { name, arity: count_toplevel_fields(&inner) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Enum { name, variants: parse_variants(&inner) }
            }
            other => panic!("serde derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Derives `serde::Serialize` (offline stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Item::TupleStruct { arity: 1, .. } => {
            // Newtype transparency, matching real serde.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Item::TupleStruct { arity, .. } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (offline stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            let body = format!(
                "match v {{\n\
                     ::serde::Value::Object(_) => Ok({name} {{ {} }}),\n\
                     other => Err(::serde::DeError::expected(\"object\", other)),\n\
                 }}",
                inits.join(", ")
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, format!("Ok({name}(::serde::Deserialize::from_value(v)?))"))
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            let body = format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}({})),\n\
                     other => Err(::serde::DeError::expected(\"array of length {arity}\", other)),\n\
                 }}",
                inits.join(", ")
            );
            (name, body)
        }
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} => Ok({name}::{vname}({})),\n\
                                     other => Err(::serde::DeError::expected(\"array of length {n}\", other)),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"enum representation\", other)),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            );
            (name, body)
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl must parse")
}
